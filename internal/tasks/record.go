package tasks

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"time"

	"juryselect/internal/pool"
)

// WAL record types. Every record is a mutation that already passed
// validation: replay applies records mechanically and deterministically.
// Decisions driven by wall-clock time (a juror timing out, a task
// expiring) are journaled as their own records, so replay never
// re-consults a clock — the property behind byte-identical recovery.
const (
	recPoolPut    = "pool_put"
	recPoolPatch  = "pool_patch"
	recPoolDelete = "pool_delete"
	recTaskCreate = "task_create"
	recVote       = "vote"
	recDecline    = "decline"
	recExpire     = "expire"
)

// recJuror is the journaled form of one selected juror: the estimate and
// cost selection saw, pinned so replay does not depend on later pool
// drift.
type recJuror struct {
	ID        string  `json:"id"`
	ErrorRate float64 `json:"rate"`
	Cost      float64 `json:"cost,omitempty"`
}

// record is one WAL entry; Type discriminates.
type record struct {
	Type string    `json:"t"`
	At   time.Time `json:"at,omitzero"`

	// Pool mutations.
	Pool    string             `json:"pool,omitempty"`
	Jurors  []pool.JurorState  `json:"jurors,omitempty"`
	Updates []pool.JurorUpdate `json:"updates,omitempty"`

	// Task mutations.
	Task         string     `json:"task,omitempty"`
	Seq          uint64     `json:"seq,omitempty"`
	Spec         *Spec      `json:"spec,omitempty"`
	Jury         []recJuror `json:"jury,omitempty"`
	PoolVersion  uint64     `json:"pool_version,omitempty"`
	PredictedJER float64    `json:"predicted_jer,omitempty"`
	Juror        string     `json:"juror,omitempty"`
	Vote         *bool      `json:"vote,omitempty"`
	Timeout      bool       `json:"timeout,omitempty"`
}

// Binary record encoding (v2). PR 5 journaled records as JSON
// (json.Marshal per mutation — the dominant allocation cost of the
// write path); v2 is a hand-rolled append-style encoding on pooled
// buffers that allocates nothing on the vote hot path. The first
// payload byte discriminates the two framings: JSON records always
// start with '{' (0x7B), binary records with a type tag < 0x20, so an
// old log replays through the same decodeRecord unchanged.
//
//	record  := tag:u8  fields…
//	time    := sec:varint  nsec:uvarint  zoneOffsetSec:varint
//	string  := len:uvarint  bytes
//	f64     := 8 bytes, IEEE-754 bits little-endian
//	bool    := u8 (0|1)
//	int     := varint (zig-zag)
//
// Timestamps reconstruct the exact wall clock and zone offset, so views
// rendered after replay marshal byte-identically to the live run's.
const (
	tagPoolPut    byte = 0x01
	tagPoolPatch  byte = 0x02
	tagPoolDelete byte = 0x03
	tagTaskCreate byte = 0x04
	tagVote       byte = 0x05
	tagDecline    byte = 0x06
	tagExpire     byte = 0x07
)

// patch-update presence flags (one byte per JurorUpdate).
const (
	updHasRate byte = 1 << iota
	updHasCost
	updHasVotes
	updRemove
)

func appendStr(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// appendTime journals the wall clock exactly: unix seconds, nanoseconds
// and the zone's offset from UTC. decodeTime rebuilds a Time whose
// RFC 3339 rendering is byte-identical to the original's.
func appendTime(b []byte, t time.Time) []byte {
	b = binary.AppendVarint(b, t.Unix())
	b = binary.AppendUvarint(b, uint64(t.Nanosecond()))
	_, offset := t.Zone()
	return binary.AppendVarint(b, int64(offset))
}

// encodeRecord appends the record's binary form to buf (a pooled
// buffer on the hot path) and returns the extended slice.
func encodeRecord(buf []byte, rec *record) ([]byte, error) {
	switch rec.Type {
	case recVote:
		if rec.Vote == nil {
			return nil, fmt.Errorf("tasks: encoding vote record: missing vote")
		}
		buf = append(buf, tagVote)
		buf = appendTime(buf, rec.At)
		buf = appendStr(buf, rec.Task)
		buf = appendStr(buf, rec.Juror)
		return appendBool(buf, *rec.Vote), nil
	case recDecline:
		buf = append(buf, tagDecline)
		buf = appendTime(buf, rec.At)
		buf = appendStr(buf, rec.Task)
		buf = appendStr(buf, rec.Juror)
		return appendBool(buf, rec.Timeout), nil
	case recExpire:
		buf = append(buf, tagExpire)
		buf = appendTime(buf, rec.At)
		return appendStr(buf, rec.Task), nil
	case recTaskCreate:
		if rec.Spec == nil {
			return nil, fmt.Errorf("tasks: encoding create record: missing spec")
		}
		buf = append(buf, tagTaskCreate)
		buf = appendTime(buf, rec.At)
		buf = binary.AppendUvarint(buf, rec.Seq)
		buf = binary.AppendUvarint(buf, rec.PoolVersion)
		buf = appendF64(buf, rec.PredictedJER)
		sp := rec.Spec
		buf = appendStr(buf, sp.Pool)
		buf = appendStr(buf, sp.Question)
		buf = appendStr(buf, sp.Strategy)
		buf = appendF64(buf, sp.Budget)
		buf = appendF64(buf, sp.TargetConfidence)
		buf = binary.AppendVarint(buf, int64(sp.MaxInvites))
		buf = binary.AppendVarint(buf, int64(sp.JurorTimeout))
		buf = binary.AppendVarint(buf, int64(sp.ExpiresIn))
		buf = binary.AppendUvarint(buf, uint64(len(rec.Jury)))
		for _, j := range rec.Jury {
			buf = appendStr(buf, j.ID)
			buf = appendF64(buf, j.ErrorRate)
			buf = appendF64(buf, j.Cost)
		}
		return buf, nil
	case recPoolPut:
		buf = append(buf, tagPoolPut)
		buf = appendTime(buf, rec.At)
		buf = appendStr(buf, rec.Pool)
		buf = binary.AppendUvarint(buf, uint64(len(rec.Jurors)))
		for _, j := range rec.Jurors {
			buf = appendStr(buf, j.ID)
			buf = appendF64(buf, j.ErrorRate)
			buf = appendF64(buf, j.Cost)
			buf = binary.AppendVarint(buf, j.WrongVotes)
			buf = binary.AppendVarint(buf, j.TotalVotes)
		}
		return buf, nil
	case recPoolPatch:
		buf = append(buf, tagPoolPatch)
		buf = appendTime(buf, rec.At)
		buf = appendStr(buf, rec.Pool)
		buf = binary.AppendUvarint(buf, uint64(len(rec.Updates)))
		for _, u := range rec.Updates {
			buf = appendStr(buf, u.ID)
			var flags byte
			if u.ErrorRate != nil {
				flags |= updHasRate
			}
			if u.Cost != nil {
				flags |= updHasCost
			}
			if u.Votes != nil {
				flags |= updHasVotes
			}
			if u.Remove {
				flags |= updRemove
			}
			buf = append(buf, flags)
			if u.ErrorRate != nil {
				buf = appendF64(buf, *u.ErrorRate)
			}
			if u.Cost != nil {
				buf = appendF64(buf, *u.Cost)
			}
			if u.Votes != nil {
				buf = binary.AppendVarint(buf, u.Votes.Wrong)
				buf = binary.AppendVarint(buf, u.Votes.Total)
			}
		}
		return buf, nil
	case recPoolDelete:
		buf = append(buf, tagPoolDelete)
		return appendStr(buf, rec.Pool), nil
	default:
		return nil, fmt.Errorf("tasks: encoding unknown record type %q", rec.Type)
	}
}

// internTable dedups what a replay decodes over and over: task and
// juror IDs repeat across thousands of records, and a fresh heap string
// per occurrence dominated replay's allocation profile (~76% of
// objects). The map is keyed by the string itself — a lookup with a
// []byte conversion key compiles to zero allocations — so only each
// distinct value's first occurrence allocates. One table per decoder
// goroutine; it is not safe for concurrent use.
type internTable struct {
	strs    map[string]string
	zoneOff int64
	zone    *time.Location
}

func newInternTable() *internTable {
	return &internTable{strs: make(map[string]string, 256)}
}

func (tab *internTable) str(b []byte) string {
	if s, ok := tab.strs[string(b)]; ok {
		return s
	}
	s := string(b)
	tab.strs[s] = s
	return s
}

// fixedZone caches the last fixed zone seen: records in one log almost
// always share an offset, and time.FixedZone allocates.
func (tab *internTable) fixedZone(offset int64) *time.Location {
	if tab.zone == nil || tab.zoneOff != offset {
		tab.zoneOff, tab.zone = offset, time.FixedZone("", int(offset))
	}
	return tab.zone
}

// sharedTrue and sharedFalse back the *bool fields of decoded records,
// saving one heap bool per vote. Decoded records are read-only
// downstream, so sharing the pointees is safe.
var sharedTrue, sharedFalse = true, false

func sharedBool(v bool) *bool {
	if v {
		return &sharedTrue
	}
	return &sharedFalse
}

// recReader walks a binary record payload. Errors are sticky; callers
// check once at the end. tab, when set, interns decoded strings and
// zones.
type recReader struct {
	buf []byte
	pos int
	err error
	tab *internTable
}

func (r *recReader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("tasks: truncated binary wal record")
	}
}

func (r *recReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.pos += n
	return v
}

func (r *recReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.pos:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.pos += n
	return v
}

func (r *recReader) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if uint64(len(r.buf)-r.pos) < n {
		r.fail()
		return ""
	}
	b := r.buf[r.pos : r.pos+int(n)]
	r.pos += int(n)
	if r.tab != nil {
		return r.tab.str(b)
	}
	return string(b)
}

func (r *recReader) f64() float64 {
	if r.err != nil {
		return 0
	}
	if len(r.buf)-r.pos < 8 {
		r.fail()
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.buf[r.pos:]))
	r.pos += 8
	return v
}

func (r *recReader) bool() bool {
	if r.err != nil {
		return false
	}
	if r.pos >= len(r.buf) {
		r.fail()
		return false
	}
	v := r.buf[r.pos]
	r.pos++
	return v != 0
}

func (r *recReader) time() time.Time {
	sec := r.varint()
	nsec := r.uvarint()
	offset := r.varint()
	if r.err != nil {
		return time.Time{}
	}
	t := time.Unix(sec, int64(nsec))
	if offset == 0 {
		return t.UTC()
	}
	if r.tab != nil {
		return t.In(r.tab.fixedZone(offset))
	}
	return t.In(time.FixedZone("", int(offset)))
}

// decodeRecord decodes one WAL payload, accepting both framings: the
// binary v2 encoding and the PR 5 JSON records (old logs replay
// unchanged after an upgrade).
func decodeRecord(payload []byte) (record, error) {
	if len(payload) == 0 {
		return record{}, fmt.Errorf("tasks: empty wal record")
	}
	if payload[0] == '{' {
		var rec record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return rec, fmt.Errorf("tasks: decoding wal record: %w", err)
		}
		if rec.Type == "" {
			return rec, fmt.Errorf("tasks: wal record missing type")
		}
		return rec, nil
	}
	return decodeBinaryRecord(payload, nil)
}

// decodeRecordInterned is decodeRecord with an intern table for the
// replay path: repeated IDs and zones come back as shared values
// instead of fresh allocations. The legacy JSON framing ignores the
// table (encoding/json allocates its own strings).
func decodeRecordInterned(payload []byte, tab *internTable) (record, error) {
	if len(payload) > 0 && payload[0] != '{' {
		return decodeBinaryRecord(payload, tab)
	}
	return decodeRecord(payload)
}

func decodeBinaryRecord(payload []byte, tab *internTable) (record, error) {
	r := recReader{buf: payload, pos: 1, tab: tab}
	var rec record
	switch payload[0] {
	case tagVote:
		rec.Type = recVote
		rec.At = r.time()
		rec.Task = r.str()
		rec.Juror = r.str()
		rec.Vote = sharedBool(r.bool())
	case tagDecline:
		rec.Type = recDecline
		rec.At = r.time()
		rec.Task = r.str()
		rec.Juror = r.str()
		rec.Timeout = r.bool()
	case tagExpire:
		rec.Type = recExpire
		rec.At = r.time()
		rec.Task = r.str()
	case tagTaskCreate:
		rec.Type = recTaskCreate
		rec.At = r.time()
		rec.Seq = r.uvarint()
		rec.PoolVersion = r.uvarint()
		rec.PredictedJER = r.f64()
		sp := &Spec{}
		sp.Pool = r.str()
		sp.Question = r.str()
		sp.Strategy = r.str()
		sp.Budget = r.f64()
		sp.TargetConfidence = r.f64()
		sp.MaxInvites = int(r.varint())
		sp.JurorTimeout = time.Duration(r.varint())
		sp.ExpiresIn = time.Duration(r.varint())
		rec.Spec = sp
		n := r.uvarint()
		if r.err == nil && n > uint64(len(payload)) {
			r.fail() // impossible count: each juror is > 1 byte
		}
		if r.err == nil {
			rec.Jury = make([]recJuror, n)
			for i := range rec.Jury {
				rec.Jury[i] = recJuror{ID: r.str(), ErrorRate: r.f64(), Cost: r.f64()}
			}
		}
	case tagPoolPut:
		rec.Type = recPoolPut
		rec.At = r.time()
		rec.Pool = r.str()
		n := r.uvarint()
		if r.err == nil && n > uint64(len(payload)) {
			r.fail()
		}
		if r.err == nil {
			rec.Jurors = make([]pool.JurorState, n)
			for i := range rec.Jurors {
				rec.Jurors[i] = pool.JurorState{
					ID: r.str(), ErrorRate: r.f64(), Cost: r.f64(),
					WrongVotes: r.varint(), TotalVotes: r.varint(),
				}
			}
		}
	case tagPoolPatch:
		rec.Type = recPoolPatch
		rec.At = r.time()
		rec.Pool = r.str()
		n := r.uvarint()
		if r.err == nil && n > uint64(len(payload)) {
			r.fail()
		}
		if r.err == nil {
			rec.Updates = make([]pool.JurorUpdate, n)
			for i := range rec.Updates {
				u := &rec.Updates[i]
				u.ID = r.str()
				flags := byte(0)
				if r.pos < len(r.buf) {
					flags = r.buf[r.pos]
					r.pos++
				} else {
					r.fail()
				}
				if flags&updHasRate != 0 {
					v := r.f64()
					u.ErrorRate = &v
				}
				if flags&updHasCost != 0 {
					v := r.f64()
					u.Cost = &v
				}
				if flags&updHasVotes != 0 {
					u.Votes = &pool.VoteObservation{Wrong: r.varint(), Total: r.varint()}
				}
				u.Remove = flags&updRemove != 0
			}
		}
	case tagPoolDelete:
		rec.Type = recPoolDelete
		rec.Pool = r.str()
	default:
		return rec, fmt.Errorf("tasks: unknown wal record tag 0x%02x", payload[0])
	}
	if r.err != nil {
		return rec, r.err
	}
	if r.pos != len(payload) {
		return rec, fmt.Errorf("tasks: %d trailing bytes in %s record", len(payload)-r.pos, rec.Type)
	}
	return rec, nil
}
