package tasks

import (
	"context"
	"encoding/json"
	"math"
	"reflect"
	"testing"
	"time"

	"juryselect/internal/pool"
)

func f64p(v float64) *float64 { return &v }
func boolp(v bool) *bool      { return &v }

// codecRecords is a corpus covering every record type and optional
// field combination.
func codecRecords() []record {
	utc := time.Date(2026, 7, 1, 12, 0, 0, 123456789, time.UTC)
	est := time.Date(2026, 2, 3, 4, 5, 6, 7, time.FixedZone("", -5*3600))
	return []record{
		{Type: recVote, At: utc, Task: "t00000001", Juror: "j0042", Vote: boolp(true)},
		{Type: recVote, At: utc, Task: "t00000002", Juror: "j0000", Vote: boolp(false)},
		{Type: recDecline, At: est, Task: "t00000001", Juror: "j0001"},
		{Type: recDecline, At: utc, Task: "t00000001", Juror: "j0001", Timeout: true},
		{Type: recExpire, At: utc, Task: "t00000009"},
		{Type: recTaskCreate, At: utc, Seq: 7, PoolVersion: 3, PredictedJER: 0.25,
			Spec: &Spec{Pool: "crowd", Question: "is it?", Strategy: StrategyPay, Budget: 5.5,
				TargetConfidence: 0.9, MaxInvites: 12, JurorTimeout: time.Minute, ExpiresIn: time.Hour},
			Jury: []recJuror{{ID: "a", ErrorRate: 0.1, Cost: 1.25}, {ID: "b", ErrorRate: 0.2}}},
		{Type: recTaskCreate, At: utc, Seq: 0, PoolVersion: 1,
			Spec: &Spec{Pool: "p", Strategy: StrategyAltr, TargetConfidence: 1,
				MaxInvites: 2, JurorTimeout: time.Second, ExpiresIn: time.Second},
			Jury: []recJuror{}},
		{Type: recPoolPut, At: utc, Pool: "crowd", Jurors: []pool.JurorState{
			{ID: "a", ErrorRate: 0.1, Cost: 2}, {ID: "b", ErrorRate: 0.3, WrongVotes: 4, TotalVotes: 9}}},
		{Type: recPoolPatch, At: utc, Pool: "crowd", Updates: []pool.JurorUpdate{
			{ID: "a", ErrorRate: f64p(0.2)},
			{ID: "b", Cost: f64p(3.5), Votes: &pool.VoteObservation{Wrong: 1, Total: 5}},
			{ID: "c", Remove: true},
			{ID: "d", ErrorRate: f64p(math.Nextafter(0.1, 1)), Cost: f64p(0)},
		}},
		{Type: recPoolDelete, Pool: "crowd"},
	}
}

// TestRecordBinaryRoundTrip checks that the v2 binary codec is lossless
// for every record shape: decode(encode(r)) == r, including exact
// float bits and timestamps that re-marshal byte-identically.
func TestRecordBinaryRoundTrip(t *testing.T) {
	for _, rec := range codecRecords() {
		raw, err := encodeRecord(nil, &rec)
		if err != nil {
			t.Fatalf("encode %s: %v", rec.Type, err)
		}
		if raw[0] == '{' {
			t.Fatalf("%s: binary encoding starts with '{' — collides with the JSON framing", rec.Type)
		}
		got, err := decodeRecord(raw)
		if err != nil {
			t.Fatalf("decode %s: %v", rec.Type, err)
		}
		// Compare through JSON: the decoded time's Location pointer may
		// differ from the original's even when the instant, offset and
		// wire rendering are identical — which is the property replay
		// actually needs.
		want, _ := json.Marshal(rec)
		have, _ := json.Marshal(got)
		if string(want) != string(have) {
			t.Errorf("%s round trip:\n got %s\nwant %s", rec.Type, have, want)
		}
	}
}

// TestRecordDecodeJSONCompat checks that PR 5 logs — JSON-framed
// records — still decode: an upgraded binary can replay a WAL written
// before the v2 encoding existed.
func TestRecordDecodeJSONCompat(t *testing.T) {
	for _, rec := range codecRecords() {
		raw, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		got, err := decodeRecord(raw)
		if err != nil {
			t.Fatalf("decode legacy %s: %v", rec.Type, err)
		}
		if got.Type != rec.Type || got.Task != rec.Task || got.Pool != rec.Pool {
			t.Errorf("legacy %s: decoded %+v", rec.Type, got)
		}
	}
}

// TestRecordDecodeTruncated checks that every truncation of a binary
// record fails loudly instead of yielding a partial record.
func TestRecordDecodeTruncated(t *testing.T) {
	for _, rec := range codecRecords() {
		raw, err := encodeRecord(nil, &rec)
		if err != nil {
			t.Fatal(err)
		}
		for cut := 1; cut < len(raw); cut++ {
			if _, err := decodeRecord(raw[:cut]); err == nil {
				t.Fatalf("%s: decoding %d/%d bytes succeeded", rec.Type, cut, len(raw))
			}
		}
	}
}

// TestRecordEncodeAllocFree pins the vote hot path's encoding cost:
// appending into a reused buffer must not allocate.
func TestRecordEncodeAllocFree(t *testing.T) {
	rec := record{Type: recVote, At: time.Now().UTC(), Task: "t00000001", Juror: "j0042", Vote: boolp(true)}
	buf := make([]byte, 0, 256)
	allocs := testing.AllocsPerRun(200, func() {
		var err error
		if _, err = encodeRecord(buf[:0], &rec); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("encodeRecord(vote) allocates %.1f/op, want 0", allocs)
	}
}

// TestReplayLegacyJSONLog writes a WAL of JSON-framed records through
// the raw WAL layer (as PR 5 did) and recovers a store from it: the
// upgrade path for logs on disk at deploy time.
func TestReplayLegacyJSONLog(t *testing.T) {
	dir := t.TempDir()
	clock := time.Date(2026, 7, 1, 12, 0, 0, 0, time.UTC)
	legacy := []record{
		{Type: recPoolPut, At: clock, Pool: "p", Jurors: []pool.JurorState{
			{ID: "a", ErrorRate: 0.1}, {ID: "b", ErrorRate: 0.2}, {ID: "c", ErrorRate: 0.3}}},
		{Type: recTaskCreate, At: clock, Seq: 0, PoolVersion: 1, PredictedJER: 0.058,
			Spec: &Spec{Pool: "p", Strategy: StrategyAltr, TargetConfidence: 1,
				MaxInvites: 6, JurorTimeout: time.Minute, ExpiresIn: time.Hour},
			Jury: []recJuror{{ID: "a", ErrorRate: 0.1}, {ID: "b", ErrorRate: 0.2}, {ID: "c", ErrorRate: 0.3}}},
		{Type: recVote, At: clock.Add(time.Second), Task: "t00000000", Juror: "a", Vote: boolp(true)},
		{Type: recDecline, At: clock.Add(2 * time.Second), Task: "t00000000", Juror: "b", Timeout: true},
	}
	w, _, err := OpenWAL(walFile(dir, 0), WALOptions{Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range legacy {
		raw, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Append(raw); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	s, err := Open(Config{Dir: dir, Sync: SyncOff})
	if err != nil {
		t.Fatalf("recovering legacy log: %v", err)
	}
	defer s.Close() //nolint:errcheck
	if s.Recovery().Records != int64(len(legacy)) {
		t.Fatalf("replayed %d records, want %d", s.Recovery().Records, len(legacy))
	}
	v, err := s.Get("t00000000")
	if err != nil {
		t.Fatal(err)
	}
	if v.VotesSpent != 1 || v.Declines != 1 {
		t.Fatalf("recovered view: votes %d declines %d", v.VotesSpent, v.Declines)
	}
	// New mutations on the recovered store journal in the binary
	// framing; a second recovery replays the mixed log.
	if _, err := s.Vote(context.Background(), "t00000000", "c", true); err != nil {
		t.Fatal(err)
	}
	before := v
	_ = before
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(Config{Dir: dir, Sync: SyncOff})
	if err != nil {
		t.Fatalf("recovering mixed log: %v", err)
	}
	defer s2.Close() //nolint:errcheck
	v2, err := s2.Get("t00000000")
	if err != nil {
		t.Fatal(err)
	}
	if v2.VotesSpent != 2 {
		t.Fatalf("mixed-log recovery: votes %d, want 2", v2.VotesSpent)
	}
	if !reflect.DeepEqual(fingerprintViews(s.List("")), fingerprintViews(s2.List(""))) {
		t.Fatal("mixed-log recovery diverged from the live store")
	}
}

// fingerprintViews renders views for comparison.
func fingerprintViews(vs []View) string {
	raw, err := json.MarshalIndent(vs, "", " ")
	if err != nil {
		panic(err)
	}
	return string(raw)
}
