package tasks

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"juryselect/internal/pool"
	"juryselect/jury"
)

// storeFingerprint renders the complete externally visible state — every
// pool (version, members, vote records) and every task view — as
// deterministic JSON. Byte equality of fingerprints is the recovery
// acceptance criterion.
func storeFingerprint(t *testing.T, s *Store) []byte {
	t.Helper()
	doc := struct {
		Pools pool.State `json:"pools"`
		Tasks []View     `json:"tasks"`
	}{Pools: s.Pools().Export(), Tasks: s.List("")}
	raw, err := json.MarshalIndent(doc, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// buildBusyStore drives a realistic mixed workload against a durable
// store: pool churn, task creation, votes (some tasks deciding early),
// declines with replacement, a timeout sweep and an expiry.
func buildBusyStore(t *testing.T, dir string, clk *fakeClock) *Store {
	t.Helper()
	s, err := Open(Config{Dir: dir, Sync: SyncOff, Now: clk.now,
		DefaultJurorTimeout: time.Minute, DefaultExpiry: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.PutPool("crowd", crowdJurors(25)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.PatchPool("crowd", []pool.JurorUpdate{
		{ID: "j003", Votes: &pool.VoteObservation{Wrong: 2, Total: 9}},
		{ID: "j024", Remove: true},
	}); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Task 0: decided by unanimous votes (early stop).
	v0, err := s.Create(ctx, Spec{Pool: "crowd", Question: "is it raining?"})
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range v0.Jurors {
		view, err := s.Vote(context.Background(), v0.ID, j.ID, true)
		if err != nil {
			t.Fatal(err)
		}
		if view.Status.closed() {
			break
		}
	}

	// Task 1: split votes plus a decline with replacement, still open.
	clk.advance(3 * time.Second)
	v1, err := s.Create(ctx, Spec{Pool: "crowd", TargetConfidence: 0.99})
	if err != nil {
		t.Fatal(err)
	}
	s.Vote(context.Background(), v1.ID, v1.Jurors[0].ID, true)  //nolint:errcheck
	s.Vote(context.Background(), v1.ID, v1.Jurors[1].ID, false) //nolint:errcheck
	if _, err := s.Decline(context.Background(), v1.ID, v1.Jurors[2].ID); err != nil {
		t.Fatal(err)
	}

	// Task 2: open, then its jury times out and replacements arrive.
	clk.advance(2 * time.Second)
	if _, err := s.Create(ctx, Spec{Pool: "crowd", JurorTimeout: 10 * time.Second}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Sweep(clk.advance(15 * time.Second)); err != nil {
		t.Fatal(err)
	}

	// Task 3: expires outright.
	v3, err := s.Create(ctx, Spec{Pool: "crowd", ExpiresIn: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Sweep(clk.advance(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Get(v3.ID); got.Status != StatusExpired {
		t.Fatalf("task 3 status %q, want expired", got.Status)
	}
	return s
}

// TestRecoveryByteIdentical is the acceptance criterion: a process that
// dies without any shutdown (the WAL file simply stops) must replay to
// the exact pre-crash store — pool versions, open tasks, tallied votes.
func TestRecoveryByteIdentical(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	s := buildBusyStore(t, dir, clk)
	before := storeFingerprint(t, s)
	// Simulated kill -9: no Close, no final sync. SyncOff still flushes
	// each record to the kernel, which is what survives a process kill.

	s2, err := Open(Config{Dir: dir, Sync: SyncOff, Now: clk.now,
		DefaultJurorTimeout: time.Minute, DefaultExpiry: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close() //nolint:errcheck
	after := storeFingerprint(t, s2)
	if string(before) != string(after) {
		t.Fatalf("recovered state diverges:\n--- before crash ---\n%s\n--- after recovery ---\n%s", before, after)
	}
	rec := s2.Recovery()
	if rec.Records == 0 || rec.Tasks != 4 || rec.Pools != 1 {
		t.Fatalf("recovery stats = %+v", rec)
	}
	if rec.TornBytes != 0 {
		t.Fatalf("clean log reported %d torn bytes", rec.TornBytes)
	}

	// The recovered store is live: the open task keeps accepting votes
	// and new tasks continue the ID sequence.
	v, err := s2.Create(context.Background(), Spec{Pool: "crowd"})
	if err != nil {
		t.Fatal(err)
	}
	if v.ID != "t00000004" {
		t.Fatalf("post-recovery task ID %q, want t00000004", v.ID)
	}
}

// TestRecoveryTornTail is the satellite crash test: truncate the WAL
// mid-record to simulate a torn write; the restart must recover exactly
// the pre-crash state minus only the torn tail.
func TestRecoveryTornTail(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	s, err := Open(Config{Dir: dir, Sync: SyncOff, Now: clk.now})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.PutPool("crowd", crowdJurors(15)); err != nil {
		t.Fatal(err)
	}
	v, err := s.Create(context.Background(), Spec{Pool: "crowd", TargetConfidence: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Votes land one record at a time; fingerprint after each.
	var prints [][]byte
	prints = append(prints, storeFingerprint(t, s))
	for _, j := range v.Jurors {
		if _, err := s.Vote(context.Background(), v.ID, j.ID, true); err != nil {
			t.Fatal(err)
		}
		prints = append(prints, storeFingerprint(t, s))
	}

	walPath := walFile(dir, 0)
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	records, _, err := readWAL(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// Cut mid-way through the final record: 2 pre-task records (put,
	// create) followed by one record per vote, so dropping the torn tail
	// must land exactly on the state after len(jury)-1 votes.
	lastLen := walFrameOverhead + len(records[len(records)-1].payload)
	torn := raw[:len(raw)-lastLen+5]
	if err := os.WriteFile(walPath, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(Config{Dir: dir, Sync: SyncOff, Now: clk.now})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close() //nolint:errcheck
	rec := s2.Recovery()
	if rec.TornBytes == 0 {
		t.Fatal("torn tail not detected")
	}
	want := prints[len(prints)-2] // state minus exactly the torn vote
	got := storeFingerprint(t, s2)
	if string(got) != string(want) {
		t.Fatalf("torn-tail recovery diverges from pre-torn state:\n%s\nvs\n%s", got, want)
	}
	// The lost vote can simply be re-submitted.
	lost := v.Jurors[len(v.Jurors)-1]
	view, err := s2.Vote(context.Background(), v.ID, lost.ID, true)
	if err != nil {
		t.Fatal(err)
	}
	if view.Status != StatusDecided {
		t.Fatalf("re-voted task status %q", view.Status)
	}
	if string(storeFingerprint(t, s2)) != string(prints[len(prints)-1]) {
		t.Fatal("re-submitted vote did not reconverge to the pre-crash state")
	}
}

// TestCompactionRoundTrip: snapshot + fresh epoch recover the same state
// as replaying the full log, and stale epoch files are cleaned up.
func TestCompactionRoundTrip(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	s := buildBusyStore(t, dir, clk)
	before := storeFingerprint(t, s)
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if string(storeFingerprint(t, s)) != string(before) {
		t.Fatal("compaction changed live state")
	}
	if st := s.Stats(); st.Compactions != 1 {
		t.Fatalf("compactions = %d", st.Compactions)
	}
	// Post-compaction mutations land in the new epoch.
	v, err := s.Create(context.Background(), Spec{Pool: "crowd"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Vote(context.Background(), v.ID, v.Jurors[0].ID, false); err != nil {
		t.Fatal(err)
	}
	withNew := storeFingerprint(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(Config{Dir: dir, Sync: SyncOff, Now: clk.now,
		DefaultJurorTimeout: time.Minute, DefaultExpiry: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close() //nolint:errcheck
	rec := s2.Recovery()
	if !rec.SnapshotLoaded {
		t.Fatal("snapshot not loaded")
	}
	if rec.Records != 2 {
		t.Fatalf("replayed %d records from the new epoch, want 2 (create+vote)", rec.Records)
	}
	if got := storeFingerprint(t, s2); string(got) != string(withNew) {
		t.Fatalf("snapshot+epoch recovery diverges:\n%s\nvs\n%s", got, withNew)
	}
	// Exactly one wal file (the current epoch) remains.
	matches, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 || matches[0] != walFile(dir, 1) {
		t.Fatalf("wal files after compaction: %v", matches)
	}
}

// TestAutoCompaction: crossing CompactEvery folds the log into the
// snapshot without losing state.
func TestAutoCompaction(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	s, err := Open(Config{Dir: dir, Sync: SyncOff, Now: clk.now, CompactEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.PutPool("crowd", crowdJurors(10)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if _, err := s.PatchPool("crowd", []pool.JurorUpdate{
			{ID: fmt.Sprintf("j%03d", i%10), Votes: &pool.VoteObservation{Wrong: int64(i % 2), Total: 1}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.Compactions == 0 {
		t.Fatal("auto-compaction never fired")
	}
	before := storeFingerprint(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(Config{Dir: dir, Sync: SyncOff, Now: clk.now, CompactEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close() //nolint:errcheck
	if got := storeFingerprint(t, s2); string(got) != string(before) {
		t.Fatal("auto-compacted store did not recover identically")
	}
	p, ok := s2.Pools().Get("crowd")
	if !ok || p.Version != 31 {
		t.Fatalf("recovered pool version %d, want 31", p.Version)
	}
}

// TestMemoryOnlyStoreHasNoWAL: Dir "" runs the same lifecycle without
// touching disk.
func TestMemoryOnlyStoreHasNoWAL(t *testing.T) {
	s, _ := newTestStore(t, 10)
	if s.Durable() {
		t.Fatal("memory store claims durability")
	}
	if err := s.Compact(); err != nil {
		t.Fatalf("memory compact = %v", err)
	}
	if st := s.Stats(); st.WAL.Appends != 0 {
		t.Fatalf("memory store counted WAL appends: %+v", st.WAL)
	}
}

func BenchmarkWALAppend(b *testing.B) {
	for _, mode := range []SyncMode{SyncOff, SyncBatch} {
		b.Run(string(mode), func(b *testing.B) {
			path := filepath.Join(b.TempDir(), "wal.log")
			w, _, err := OpenWAL(path, WALOptions{Sync: mode, BatchInterval: 500 * time.Microsecond})
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close() //nolint:errcheck
			payload := []byte(`{"t":"vote","task":"t00000001","juror":"j00042","vote":true}`)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := w.Append(payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStoreReplay measures recovery throughput: records replayed
// per second from a vote-heavy log.
func BenchmarkStoreReplay(b *testing.B) {
	dir := b.TempDir()
	clk := newFakeClock()
	s, err := Open(Config{Dir: dir, Sync: SyncOff, Now: clk.now, CompactEvery: -1})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := s.PutPool("crowd", crowdJurors(101)); err != nil {
		b.Fatal(err)
	}
	const tasksN = 200
	records := 1
	for i := 0; i < tasksN; i++ {
		v, err := s.Create(context.Background(), Spec{Pool: "crowd", TargetConfidence: 1})
		if err != nil {
			b.Fatal(err)
		}
		records++
		for _, j := range v.Jurors {
			if _, err := s.Vote(context.Background(), v.ID, j.ID, i%2 == 0); err != nil {
				b.Fatal(err)
			}
			records++
		}
	}
	if err := s.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s2, err := Open(Config{Dir: dir, Sync: SyncOff, Now: clk.now, CompactEvery: -1})
		if err != nil {
			b.Fatal(err)
		}
		if s2.Recovery().Records != int64(records) {
			b.Fatalf("replayed %d records, want %d", s2.Recovery().Records, records)
		}
		b.StopTimer()
		s2.Close() //nolint:errcheck
		b.StartTimer()
	}
	b.ReportMetric(float64(records*b.N)/b.Elapsed().Seconds(), "records/s")
}

// silence unused-import lint in builds where jury is only used here.
var _ = jury.Juror{}
