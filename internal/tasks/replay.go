package tasks

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// replayChunkSize is the number of WAL records decoded per pipeline
// chunk; replayPipelineMin is the log size below which the serial path
// is cheaper than starting the pipeline.
const (
	replayChunkSize   = 256
	replayPipelineMin = 1024
)

// replayChunkPool recycles per-chunk record slices across replays (and
// across chunks within one replay: the apply loop returns a chunk's
// slice as soon as it has been applied).
var replayChunkPool = sync.Pool{
	New: func() any {
		s := make([]record, 0, replayChunkSize)
		return &s
	},
}

// recChunk is one decoded chunk handed from the decoders to the apply
// loop.
type recChunk struct {
	recs *[]record
	err  error
}

// replayRecords decodes and applies the intact WAL records. Small logs
// decode inline; past replayPipelineMin the decode fans out to a small
// worker pool by chunk while the apply loop consumes chunks strictly in
// index order — application must stay sequential, because WAL order is
// application order (the byte-identical-recovery invariant). Decoding,
// by contrast, is pure per-record work and parallelizes freely.
func (s *Store) replayRecords(records []walRecord) error {
	if len(records) < replayPipelineMin {
		tab := newInternTable()
		for i := range records {
			rec, err := decodeRecordInterned(records[i].payload, tab)
			if err != nil {
				return err
			}
			if err := s.applyRecord(&rec); err != nil {
				return fmt.Errorf("tasks: replaying %s record: %w", rec.Type, err)
			}
		}
		return nil
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > 4 {
		workers = 4
	}
	nChunks := (len(records) + replayChunkSize - 1) / replayChunkSize
	results := make([]chan recChunk, nChunks)
	for i := range results {
		results[i] = make(chan recChunk, 1) // buffered: a decoder never blocks on the applier
	}
	var next atomic.Int64
	for w := 0; w < workers; w++ {
		go func() {
			tab := newInternTable() // per-goroutine: internTable is not concurrency-safe
			for {
				i := int(next.Add(1)) - 1
				if i >= nChunks {
					return
				}
				lo := i * replayChunkSize
				hi := min(lo+replayChunkSize, len(records))
				sp := replayChunkPool.Get().(*[]record)
				recs := (*sp)[:0]
				var cerr error
				for _, r := range records[lo:hi] {
					rec, err := decodeRecordInterned(r.payload, tab)
					if err != nil {
						cerr = err
						break
					}
					recs = append(recs, rec)
				}
				*sp = recs
				results[i] <- recChunk{recs: sp, err: cerr}
			}
		}()
	}
	for i := 0; i < nChunks; i++ {
		c := <-results[i]
		if c.err != nil {
			return c.err // decoders drain into their buffered channels and exit
		}
		for j := range *c.recs {
			rec := &(*c.recs)[j]
			if err := s.applyRecord(rec); err != nil {
				return fmt.Errorf("tasks: replaying %s record: %w", rec.Type, err)
			}
		}
		replayChunkPool.Put(c.recs)
	}
	return nil
}
