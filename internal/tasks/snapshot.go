package tasks

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"juryselect/internal/estimate"
	"juryselect/internal/pool"
	"juryselect/jury"
)

// snapshotSchema identifies the compaction snapshot format.
const snapshotSchema = "juryselect-taskwal/v1"

// taskSnap is the snapshot form of one task: everything needed to
// rebuild it bit-identically, including the posterior accumulator state
// (persisted raw rather than re-derived, so juror-order bookkeeping
// cannot perturb the floating-point sum) and, for still-open tasks, the
// candidate view replacements are drawn from.
type taskSnap struct {
	ID           string       `json:"id"`
	Spec         Spec         `json:"spec"`
	Status       Status       `json:"status"`
	PoolVersion  uint64       `json:"pool_version"`
	PredictedJER float64      `json:"predicted_jer"`
	CreatedAt    time.Time    `json:"created_at"`
	ExpiresAt    time.Time    `json:"expires_at"`
	Jurors       []JurorView  `json:"jurors"`
	Declines     int          `json:"declines,omitempty"`
	LogOdds      float64      `json:"log_odds"`
	Votes        int          `json:"votes"`
	Verdict      *VerdictView `json:"verdict,omitempty"`
	Candidates   []recJuror   `json:"candidates,omitempty"`
}

// snapshotFile is the on-disk snapshot: the full store state at a
// compaction point. The WAL epoch it names starts empty; recovery loads
// the snapshot and replays only that epoch's log.
type snapshotFile struct {
	Schema   string     `json:"schema"`
	Epoch    uint64     `json:"epoch"`
	Pools    pool.State `json:"pools"`
	Tasks    []taskSnap `json:"tasks"`
	NextTask uint64     `json:"next_task"`
}

// loadSnapshot restores the snapshot file, if present. Called by Open
// before WAL replay.
func (s *Store) loadSnapshot() error {
	path := filepath.Join(s.dir, snapshotFileName)
	raw, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	var snap snapshotFile
	if err := json.Unmarshal(raw, &snap); err != nil {
		return fmt.Errorf("tasks: decoding snapshot: %w", err)
	}
	if snap.Schema != snapshotSchema {
		return fmt.Errorf("tasks: snapshot schema %q, want %q", snap.Schema, snapshotSchema)
	}
	if err := s.pools.Restore(snap.Pools); err != nil {
		return err
	}
	for _, ts := range snap.Tasks {
		t := &task{
			id:           ts.ID,
			spec:         ts.Spec,
			status:       ts.Status,
			poolVersion:  ts.PoolVersion,
			predictedJER: ts.PredictedJER,
			createdAt:    ts.CreatedAt,
			expiresAt:    ts.ExpiresAt,
			jurors:       make([]TaskJuror, len(ts.Jurors)),
			index:        make(map[string]int, len(ts.Jurors)),
			post:         estimate.RestoreVerdictPosterior(ts.LogOdds, ts.Votes),
			declines:     ts.Declines,
		}
		for i, jv := range ts.Jurors {
			t.jurors[i] = TaskJuror{ID: jv.ID, ErrorRate: jv.ErrorRate, Cost: jv.Cost,
				State: jv.State, Vote: jv.Vote, InvitedAt: jv.InvitedAt}
			t.index[jv.ID] = i
		}
		if ts.Verdict != nil {
			t.verdict = &Verdict{Answer: ts.Verdict.Answer, Confidence: ts.Verdict.Confidence,
				EarlyStopped: ts.Verdict.EarlyStopped, DecidedAt: ts.Verdict.DecidedAt}
		}
		if len(ts.Candidates) > 0 {
			t.candidates = make([]jury.Juror, len(ts.Candidates))
			for i, c := range ts.Candidates {
				t.candidates[i] = jury.Juror{ID: c.ID, ErrorRate: c.ErrorRate, Cost: c.Cost}
			}
		}
		s.shardFor(t.id).insert(t)
		s.nTasks.Add(1)
		switch t.status {
		case StatusOpen:
			s.nOpen.Add(1)
		case StatusAwaitingVotes:
			s.nAwaiting.Add(1)
		case StatusDecided:
			s.nDecided.Add(1)
		case StatusExpired:
			s.nExpired.Add(1)
		}
	}
	s.nextTask.Store(snap.NextTask)
	s.epoch = snap.Epoch
	s.recovery.SnapshotLoaded = true
	return nil
}

// Compact folds the entire store state into a fresh snapshot and starts
// a new, empty WAL epoch, bounding both recovery time and disk usage.
// Safe to call at any time; mutations wait while it runs (it takes
// every store lock — rare and bounded, so stopping the world is
// cheaper than making the hot path compaction-aware). Crash-safe at
// every step: the snapshot is written to a temp file and renamed into
// place before the old epoch's log is deleted, and recovery ignores log
// epochs other than the snapshot's.
func (s *Store) Compact() error {
	s.compactGate.Lock()
	defer s.compactGate.Unlock()
	s.lockAll()
	defer s.unlockAll()
	return s.compactLocked()
}

// compactLocked is Compact with every store lock held.
func (s *Store) compactLocked() error {
	wal := s.wal.Load()
	if wal == nil {
		return nil
	}
	tasksSorted := s.tasksSorted()
	snap := snapshotFile{
		Schema:   snapshotSchema,
		Epoch:    s.epoch + 1,
		Pools:    s.pools.Export(),
		NextTask: s.nextTask.Load(),
		Tasks:    make([]taskSnap, 0, len(tasksSorted)),
	}
	for _, t := range tasksSorted {
		ts := taskSnap{
			ID:           t.id,
			Spec:         t.spec,
			Status:       t.status,
			PoolVersion:  t.poolVersion,
			PredictedJER: t.predictedJER,
			CreatedAt:    t.createdAt,
			ExpiresAt:    t.expiresAt,
			Jurors:       make([]JurorView, len(t.jurors)),
			Declines:     t.declines,
			LogOdds:      t.post.LogOdds(),
			Votes:        t.post.Votes(),
		}
		for i, j := range t.jurors {
			ts.Jurors[i] = JurorView{ID: j.ID, ErrorRate: j.ErrorRate, Cost: j.Cost,
				State: j.State, Vote: j.Vote, InvitedAt: j.InvitedAt}
		}
		if t.verdict != nil {
			ts.Verdict = &VerdictView{Answer: t.verdict.Answer, Confidence: t.verdict.Confidence,
				EarlyStopped: t.verdict.EarlyStopped, DecidedAt: t.verdict.DecidedAt}
		}
		if !t.status.closed() {
			// Only open tasks can still invite replacements; closed tasks
			// drop the candidate view from the snapshot.
			ts.Candidates = make([]recJuror, len(t.candidates))
			for i, c := range t.candidates {
				ts.Candidates[i] = recJuror{ID: c.ID, ErrorRate: c.ErrorRate, Cost: c.Cost}
			}
		}
		snap.Tasks = append(snap.Tasks, ts)
	}
	raw, err := json.Marshal(&snap)
	if err != nil {
		return err
	}

	// Open the new epoch's log BEFORE renaming the snapshot into place.
	// Once a snapshot naming epoch N+1 is visible, recovery reads only
	// wal-(N+1) — so the cutover to that log must be infallible from
	// that moment on. Opening first keeps the failure cases safe: an
	// open error leaves the old (snapshot, full log) pair untouched,
	// and after a successful rename only in-memory pointer swaps remain.
	next, stale, err := OpenWAL(walFile(s.dir, snap.Epoch), WALOptions{
		Sync:          wal.mode,
		BatchInterval: wal.interval,
		TimerCommit:   wal.timerOnly,
		FsyncObserver: wal.fsyncObs,
	})
	if err != nil {
		return fmt.Errorf("tasks: opening wal epoch %d: %w", snap.Epoch, err)
	}
	if len(stale) > 0 {
		// A crashed previous compaction left records in this epoch's
		// file; they are covered by an older snapshot that has since been
		// replaced, so drop them.
		if err := next.Reset(); err != nil {
			next.Close() //nolint:errcheck
			return err
		}
	}
	path := filepath.Join(s.dir, snapshotFileName)
	renamed, err := writeFileSync(path, raw)
	if err != nil {
		next.Close() //nolint:errcheck
		if renamed {
			// The epoch-(N+1) snapshot may already be visible while the
			// store would keep journaling to epoch N, whose records a
			// restart would ignore. Refusing further mutations is the
			// only honest state; a restart recovers from the snapshot.
			s.failed.Store(true)
			return fmt.Errorf("tasks: snapshot rename finished but could not be confirmed durable: %w", err)
		}
		os.Remove(walFile(s.dir, snap.Epoch)) //nolint:errcheck // stale empty epoch
		return fmt.Errorf("tasks: writing snapshot: %w", err)
	}

	oldPath := walFile(s.dir, s.epoch)
	s.wal.Store(next)
	s.epoch = snap.Epoch
	s.sinceCompact.Store(0)
	s.compactions.Add(1)
	wal.Close()        //nolint:errcheck // superseded by the snapshot
	os.Remove(oldPath) //nolint:errcheck // best-effort; stale files are ignored
	return nil
}

// writeFileSync writes data durably: temp file in the same directory,
// fsync, rename over path, fsync the directory. renamed reports whether
// the rename was attempted — on a true return with a non-nil error the
// file at path may or may not be the new content, and the caller must
// treat the swap as having happened.
func writeFileSync(path string, data []byte) (renamed bool, err error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return false, err
	}
	tmp := f.Name()
	defer os.Remove(tmp) // no-op after the rename
	if _, err := f.Write(data); err != nil {
		f.Close()
		return false, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return false, err
	}
	if err := f.Chmod(0o644); err != nil {
		f.Close()
		return false, err
	}
	if err := f.Close(); err != nil {
		return false, err
	}
	if err := os.Rename(tmp, path); err != nil {
		return true, err
	}
	d, err := os.Open(dir)
	if err != nil {
		return true, err
	}
	defer d.Close()
	return true, d.Sync()
}
