package tasks

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"juryselect/internal/estimate"
	"juryselect/internal/pool"
	"juryselect/jury"
)

// Defaults for the zero Config.
const (
	// DefaultJurorTimeout releases an invited juror who has not answered.
	DefaultJurorTimeout = 60 * time.Second
	// DefaultExpiry closes a task that never reached a verdict.
	DefaultExpiry = time.Hour
	// DefaultCompactEvery is the number of WAL records between automatic
	// snapshot compactions.
	DefaultCompactEvery = 8192
)

// ErrStoreFailed reports that a previous journal write failed: the
// in-memory state may be ahead of the log, so further mutations are
// refused until the process restarts and replays.
var ErrStoreFailed = errors.New("tasks: store failed (journal write error)")

// Config configures Open. The zero value of every field selects a
// sensible default; an empty Dir selects a memory-only store (no
// durability — tests, simulations and ephemeral deployments).
type Config struct {
	// Dir is the WAL directory ("" = memory-only).
	Dir string
	// Sync is the WAL durability mode (default SyncBatch).
	Sync SyncMode
	// BatchInterval is the SyncBatch group-commit window.
	BatchInterval time.Duration
	// Engine is the shared JER engine; nil constructs a default one.
	Engine *jury.Engine
	// Pools is the live juror-pool store the tasks select from; nil
	// constructs an empty one. All pool mutations must flow through the
	// task store (PutPool/PatchPool/DeletePool) so they are journaled.
	Pools *pool.Store
	// CompactEvery triggers snapshot compaction after that many WAL
	// records (0 = DefaultCompactEvery, negative = never).
	CompactEvery int
	// DefaultJurorTimeout, DefaultExpiry and DefaultTargetConfidence fill
	// unset Spec fields at creation.
	DefaultJurorTimeout     time.Duration
	DefaultExpiry           time.Duration
	DefaultTargetConfidence float64
	// Now overrides the clock (tests).
	Now func() time.Time
}

// RecoveryStats describes what Open replayed.
type RecoveryStats struct {
	// SnapshotLoaded reports that a compaction snapshot was restored.
	SnapshotLoaded bool
	// Records is the number of intact WAL records replayed.
	Records int64
	// TornBytes is the size of the truncated torn tail (0 = clean log).
	TornBytes int64
	// Pools and Tasks count the recovered state.
	Pools int
	Tasks int
}

// Stats is the store's observability surface: lifecycle gauges plus WAL
// counters, exported by juryd's /metrics.
type Stats struct {
	Open          int
	AwaitingVotes int
	Decided       int
	Expired       int
	Tasks         int
	Compactions   int64
	WAL           WALStats
}

// Store is the durable decision-task store: the lifecycle state machine,
// the journaled pool mutations, and the recovery machinery. All methods
// are safe for concurrent use.
type Store struct {
	mu    sync.Mutex
	wal   *WAL // nil for memory-only stores
	dir   string
	epoch uint64

	pools *pool.Store
	eng   *jury.Engine
	now   func() time.Time

	defaultJurorTimeout time.Duration
	defaultExpiry       time.Duration
	defaultTarget       float64
	compactEvery        int
	sinceCompact        int
	compactions         atomic.Int64

	tasks    map[string]*task
	order    []string // creation order, for deterministic listing/sweeps
	nextTask uint64
	failed   bool // sticky: a journal write failed after state applied

	nOpen, nAwaiting, nDecided, nExpired int

	recovery RecoveryStats
}

// walFile names the epoch's log file inside dir.
func walFile(dir string, epoch uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%06d.log", epoch))
}

// snapshotFileName is the compaction snapshot inside dir.
const snapshotFileName = "snapshot.json"

// Open builds a Store, recovering state from Dir when set: it loads the
// compaction snapshot (if any), replays the current WAL epoch —
// truncating a torn tail — and resumes exactly where the previous
// process stopped.
func Open(cfg Config) (*Store, error) {
	s := &Store{
		pools:               cfg.Pools,
		eng:                 cfg.Engine,
		now:                 cfg.Now,
		defaultJurorTimeout: cfg.DefaultJurorTimeout,
		defaultExpiry:       cfg.DefaultExpiry,
		defaultTarget:       cfg.DefaultTargetConfidence,
		compactEvery:        cfg.CompactEvery,
		tasks:               make(map[string]*task),
		dir:                 cfg.Dir,
	}
	if s.pools == nil {
		s.pools = pool.NewStore()
	}
	if s.eng == nil {
		s.eng = jury.NewEngine(jury.BatchOptions{})
	}
	if s.now == nil {
		s.now = func() time.Time { return time.Now().UTC() }
	}
	if s.defaultJurorTimeout <= 0 {
		s.defaultJurorTimeout = DefaultJurorTimeout
	}
	if s.defaultExpiry <= 0 {
		s.defaultExpiry = DefaultExpiry
	}
	if s.defaultTarget == 0 {
		s.defaultTarget = estimate.DefaultTargetConfidence
	}
	if s.compactEvery == 0 {
		s.compactEvery = DefaultCompactEvery
	}
	if s.dir == "" {
		return s, nil
	}

	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return nil, err
	}
	if err := s.loadSnapshot(); err != nil {
		return nil, err
	}
	wal, records, err := OpenWAL(walFile(s.dir, s.epoch), WALOptions{
		Sync:          cfg.Sync,
		BatchInterval: cfg.BatchInterval,
	})
	if err != nil {
		return nil, err
	}
	s.wal = wal
	for _, r := range records {
		rec, err := decodeRecord(r.payload)
		if err != nil {
			wal.Close() //nolint:errcheck
			return nil, err
		}
		if err := s.applyRecord(rec); err != nil {
			wal.Close() //nolint:errcheck
			return nil, fmt.Errorf("tasks: replaying %s record: %w", rec.Type, err)
		}
	}
	s.sinceCompact = len(records)
	st := wal.Stats()
	s.recovery.Records = st.ReplayRecords
	s.recovery.TornBytes = st.TornBytes
	s.recovery.Pools = s.pools.Len()
	s.recovery.Tasks = len(s.tasks)
	s.removeStaleWALs()
	return s, nil
}

// removeStaleWALs deletes log files from epochs other than the current
// one (left behind by a crash between compaction steps; their contents
// are covered by the snapshot).
func (s *Store) removeStaleWALs() {
	matches, err := filepath.Glob(filepath.Join(s.dir, "wal-*.log"))
	if err != nil {
		return
	}
	cur := walFile(s.dir, s.epoch)
	for _, m := range matches {
		if m != cur {
			os.Remove(m) //nolint:errcheck // best-effort cleanup
		}
	}
}

// Recovery returns what Open replayed.
func (s *Store) Recovery() RecoveryStats { return s.recovery }

// Pools returns the live juror-pool store. Reads are free; mutations
// must go through PutPool/PatchPool/DeletePool to stay journaled.
func (s *Store) Pools() *pool.Store { return s.pools }

// Engine returns the shared JER engine.
func (s *Store) Engine() *jury.Engine { return s.eng }

// Durable reports whether the store journals to disk.
func (s *Store) Durable() bool { return s.wal != nil }

// Close flushes and closes the WAL. Further mutations fail.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return nil
	}
	return s.wal.Close()
}

// Stats returns the lifecycle gauges and WAL counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	st := Stats{
		Open:          s.nOpen,
		AwaitingVotes: s.nAwaiting,
		Decided:       s.nDecided,
		Expired:       s.nExpired,
		Tasks:         len(s.tasks),
		Compactions:   s.compactions.Load(),
	}
	wal := s.wal
	s.mu.Unlock()
	if wal != nil {
		st.WAL = wal.Stats()
	}
	return st
}

// commit identifies a journaled record for the durability wait: the WAL
// instance it was appended to (a compaction may swap s.wal before the
// caller waits) and its sequence there.
type commit struct {
	wal *WAL
	seq uint64
}

// journal appends a record to the WAL (if any) without waiting for
// durability, returning the commit token to pass to waitDurable.
// Callers hold s.mu, so WAL order always equals application order.
func (s *Store) journal(rec record) (commit, error) {
	if s.wal == nil {
		return commit{}, nil
	}
	raw, err := encodeRecord(rec)
	if err != nil {
		return commit{}, err
	}
	seq, err := s.wal.AppendAsync(raw)
	if err != nil {
		// The in-memory state this record describes was (or is about to
		// be) applied; the journal no longer matches. Fail the store:
		// restarting and replaying the intact log is the recovery path.
		s.failed = true
		return commit{}, fmt.Errorf("%w: %v", ErrStoreFailed, err)
	}
	s.sinceCompact++
	return commit{wal: s.wal, seq: seq}, nil
}

// waitDurable blocks until the journaled record is durable. Called
// without s.mu so concurrent mutations group-commit into shared fsyncs.
// A record's WAL may have been superseded by a compaction meanwhile;
// its Close acknowledged everything buffered, so the wait still ends.
func (s *Store) waitDurable(c commit) error {
	if c.wal == nil || c.seq == 0 {
		return nil
	}
	return c.wal.WaitDurable(c.seq)
}

// maybeCompactLocked triggers compaction when the log has grown past the
// threshold. Callers hold s.mu.
func (s *Store) maybeCompactLocked() {
	if s.wal == nil || s.compactEvery < 0 || s.sinceCompact < s.compactEvery || s.failed {
		return
	}
	if err := s.compactLocked(); err != nil {
		// Compaction failure is not fatal: the log keeps growing and the
		// next threshold crossing retries.
		s.sinceCompact = 0
	}
}

// --- journaled pool mutations -------------------------------------------

// PutPool journals and applies a full pool replacement.
func (s *Store) PutPool(name string, jurors []jury.Juror) (*pool.Pool, error) {
	at := s.now()
	s.mu.Lock()
	if s.failed {
		s.mu.Unlock()
		return nil, ErrStoreFailed
	}
	p, err := s.pools.PutAt(name, jurors, at)
	if err != nil {
		s.mu.Unlock()
		return nil, err
	}
	states := make([]pool.JurorState, len(jurors))
	for i, j := range jurors {
		states[i] = pool.JurorState{ID: j.ID, ErrorRate: j.ErrorRate, Cost: j.Cost}
	}
	c, err := s.journal(record{Type: recPoolPut, At: at, Pool: name, Jurors: states})
	s.maybeCompactLocked()
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	if err := s.waitDurable(c); err != nil {
		return nil, err
	}
	return p, nil
}

// PatchPool journals and applies incremental pool updates.
func (s *Store) PatchPool(name string, updates []pool.JurorUpdate) (*pool.Pool, error) {
	at := s.now()
	s.mu.Lock()
	if s.failed {
		s.mu.Unlock()
		return nil, ErrStoreFailed
	}
	p, err := s.pools.PatchAt(name, updates, at)
	if err != nil {
		s.mu.Unlock()
		return nil, err
	}
	c, err := s.journal(record{Type: recPoolPatch, At: at, Pool: name, Updates: updates})
	s.maybeCompactLocked()
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	if err := s.waitDurable(c); err != nil {
		return nil, err
	}
	return p, nil
}

// DeletePool journals and applies a pool deletion. It reports whether
// the pool existed.
func (s *Store) DeletePool(name string) (bool, error) {
	s.mu.Lock()
	if s.failed {
		s.mu.Unlock()
		return false, ErrStoreFailed
	}
	if !s.pools.Delete(name) {
		s.mu.Unlock()
		return false, nil
	}
	c, err := s.journal(record{Type: recPoolDelete, Pool: name})
	s.maybeCompactLocked()
	s.mu.Unlock()
	if err != nil {
		return true, err
	}
	return true, s.waitDurable(c)
}

// --- task lifecycle ------------------------------------------------------

// Create selects a jury for the spec from the named pool's current
// snapshot, journals the task and returns its initial view. The
// selection itself runs outside the store lock on the immutable
// snapshot.
func (s *Store) Create(ctx context.Context, spec Spec) (View, error) {
	spec, err := s.normalizeSpec(spec)
	if err != nil {
		return View{}, err
	}
	p, ok := s.pools.Get(spec.Pool)
	if !ok {
		return View{}, fmt.Errorf("%w: %q", pool.ErrPoolNotFound, spec.Pool)
	}
	var sel jury.Selection
	if spec.Strategy == StrategyPay {
		sel, err = s.eng.SelectBudgetedContext(ctx, p.Sorted(), spec.Budget)
	} else {
		sel, err = s.eng.SelectAltruisticSnapshot(ctx, p.Sorted())
	}
	if err != nil {
		return View{}, err
	}
	if spec.MaxInvites == 0 {
		spec.MaxInvites = 2 * len(sel.Jurors)
	}
	jurySel := make([]recJuror, len(sel.Jurors))
	for i, j := range sel.Jurors {
		jurySel[i] = recJuror{ID: j.ID, ErrorRate: j.ErrorRate, Cost: j.Cost}
	}
	at := s.now()

	s.mu.Lock()
	if s.failed {
		s.mu.Unlock()
		return View{}, ErrStoreFailed
	}
	// Re-fetch the pool under the store mutex: pool mutations journal
	// under this same lock, so this snapshot is exactly the pool state
	// at this record's position in the log — which is what applyCreate
	// derives again on replay. Using the pre-lock snapshot here would
	// let a concurrently journaled patch slip between it and the create
	// record, making replay build a different replacement-candidate
	// view than the live task used (and then reject the live run's own
	// decline/vote records).
	p, ok = s.pools.Get(spec.Pool)
	if !ok {
		s.mu.Unlock()
		return View{}, fmt.Errorf("%w: %q", pool.ErrPoolNotFound, spec.Pool)
	}
	seqNo := s.nextTask
	rec := record{
		Type:         recTaskCreate,
		At:           at,
		Seq:          seqNo,
		Spec:         &spec,
		Jury:         jurySel,
		PoolVersion:  p.Version,
		PredictedJER: sel.JER,
	}
	tok, err := s.journal(rec)
	if err != nil {
		s.mu.Unlock()
		return View{}, err
	}
	t := s.applyCreate(rec, p.Sorted())
	view := t.view()
	s.maybeCompactLocked()
	s.mu.Unlock()
	if err := s.waitDurable(tok); err != nil {
		return View{}, err
	}
	return view, nil
}

// applyCreate inserts the journaled task. Callers hold s.mu.
func (s *Store) applyCreate(rec record, candidates []jury.Juror) *task {
	id := fmt.Sprintf("t%08d", rec.Seq)
	t := &task{
		id:           id,
		spec:         *rec.Spec,
		status:       StatusOpen,
		poolVersion:  rec.PoolVersion,
		predictedJER: rec.PredictedJER,
		createdAt:    rec.At,
		expiresAt:    rec.At.Add(rec.Spec.ExpiresIn),
		jurors:       make([]TaskJuror, len(rec.Jury)),
		index:        make(map[string]int, len(rec.Jury)),
		candidates:   candidates,
	}
	for i, j := range rec.Jury {
		t.jurors[i] = TaskJuror{ID: j.ID, ErrorRate: j.ErrorRate, Cost: j.Cost,
			State: JurorInvited, InvitedAt: rec.At}
		t.index[j.ID] = i
	}
	s.tasks[id] = t
	s.order = append(s.order, id)
	if rec.Seq >= s.nextTask {
		s.nextTask = rec.Seq + 1
	}
	s.nOpen++
	return t
}

// Get returns the task's current view.
func (s *Store) Get(id string) (View, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tasks[id]
	if !ok {
		return View{}, fmt.Errorf("%w: %q", ErrTaskNotFound, id)
	}
	return t.view(), nil
}

// List returns every task's view in creation order, optionally filtered
// by status ("" = all).
func (s *Store) List(status Status) []View {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]View, 0, len(s.order))
	for _, id := range s.order {
		t := s.tasks[id]
		if status != "" && t.status != status {
			continue
		}
		out = append(out, t.view())
	}
	return out
}

// checkVote validates a prospective vote/decline without mutating.
func checkVote(t *task, jurorID string) (int, error) {
	if t.status.closed() {
		return 0, fmt.Errorf("%w: %s is %s", ErrTaskClosed, t.id, t.status)
	}
	i, ok := t.index[jurorID]
	if !ok {
		return 0, fmt.Errorf("%w: %q on task %s", ErrNotInvited, jurorID, t.id)
	}
	switch t.jurors[i].State {
	case JurorVoted:
		return 0, fmt.Errorf("%w: %q on task %s", ErrAlreadyVoted, jurorID, t.id)
	case JurorDeclined, JurorTimedOut:
		return 0, fmt.Errorf("%w: %q on task %s", ErrJurorReleased, jurorID, t.id)
	}
	return i, nil
}

// Vote records one juror's vote, folds it into the posterior, and closes
// the task when the confidence target is crossed (sequential early stop)
// or the jury is exhausted.
func (s *Store) Vote(id, jurorID string, voteYes bool) (View, error) {
	at := s.now()
	s.mu.Lock()
	if s.failed {
		s.mu.Unlock()
		return View{}, ErrStoreFailed
	}
	t, ok := s.tasks[id]
	if !ok {
		s.mu.Unlock()
		return View{}, fmt.Errorf("%w: %q", ErrTaskNotFound, id)
	}
	if _, err := checkVote(t, jurorID); err != nil {
		s.mu.Unlock()
		return View{}, err
	}
	v := voteYes
	c, err := s.journal(record{Type: recVote, At: at, Task: id, Juror: jurorID, Vote: &v})
	if err != nil {
		s.mu.Unlock()
		return View{}, err
	}
	s.applyVote(t, jurorID, voteYes, at)
	view := t.view()
	s.maybeCompactLocked()
	s.mu.Unlock()
	if err := s.waitDurable(c); err != nil {
		return View{}, err
	}
	return view, nil
}

// applyVote applies a validated vote. Callers hold s.mu.
func (s *Store) applyVote(t *task, jurorID string, voteYes bool, at time.Time) {
	i := t.index[jurorID]
	v := voteYes
	t.jurors[i].Vote = &v
	t.jurors[i].State = JurorVoted
	// The rate was validated at pool ingest and pinned at invitation, so
	// Observe cannot fail.
	t.post.Observe(voteYes, t.jurors[i].ErrorRate) //nolint:errcheck
	if t.status == StatusOpen {
		s.setStatus(t, StatusAwaitingVotes)
	}
	s.closeCheck(t, at)
}

// Decline releases a juror who refused the invitation and invites the
// next-best replacement under the remaining budget.
func (s *Store) Decline(id, jurorID string) (View, error) {
	return s.decline(id, jurorID, false)
}

func (s *Store) decline(id, jurorID string, timeout bool) (View, error) {
	at := s.now()
	s.mu.Lock()
	if s.failed {
		s.mu.Unlock()
		return View{}, ErrStoreFailed
	}
	t, ok := s.tasks[id]
	if !ok {
		s.mu.Unlock()
		return View{}, fmt.Errorf("%w: %q", ErrTaskNotFound, id)
	}
	if _, err := checkVote(t, jurorID); err != nil {
		s.mu.Unlock()
		return View{}, err
	}
	c, err := s.journal(record{Type: recDecline, At: at, Task: id, Juror: jurorID, Timeout: timeout})
	if err != nil {
		s.mu.Unlock()
		return View{}, err
	}
	s.applyDecline(t, jurorID, timeout, at)
	view := t.view()
	s.maybeCompactLocked()
	s.mu.Unlock()
	if err := s.waitDurable(c); err != nil {
		return View{}, err
	}
	return view, nil
}

// applyDecline releases the juror, invites a replacement when one fits,
// and re-checks closure. Callers hold s.mu.
func (s *Store) applyDecline(t *task, jurorID string, timeout bool, at time.Time) {
	i := t.index[jurorID]
	if timeout {
		t.jurors[i].State = JurorTimedOut
	} else {
		t.jurors[i].State = JurorDeclined
	}
	t.declines++
	s.inviteReplacement(t, at)
	s.closeCheck(t, at)
}

// inviteReplacement invites the next-best candidate from the task's
// creation snapshot: lowest ε not yet invited and, under the pay
// strategy, fitting the budget freed by releases. Deterministic — the
// candidate view is ε-sorted and immutable — so WAL replay re-derives
// the same invitation.
func (s *Store) inviteReplacement(t *task, at time.Time) {
	if t.status.closed() || len(t.jurors) >= t.spec.MaxInvites {
		return
	}
	var remaining float64
	if t.spec.Strategy == StrategyPay {
		remaining = t.spec.Budget - t.committedCost()
	}
	for _, c := range t.candidates {
		if _, invited := t.index[c.ID]; invited {
			continue
		}
		if t.spec.Strategy == StrategyPay && c.Cost > remaining {
			continue
		}
		t.jurors = append(t.jurors, TaskJuror{ID: c.ID, ErrorRate: c.ErrorRate, Cost: c.Cost,
			State: JurorInvited, InvitedAt: at})
		t.index[c.ID] = len(t.jurors) - 1
		return
	}
}

// closeCheck applies the sequential stopping rule. Callers hold s.mu.
func (s *Store) closeCheck(t *task, at time.Time) {
	if t.status.closed() {
		return
	}
	answer, conf := t.post.Verdict()
	if t.spec.TargetConfidence < 1 && conf >= t.spec.TargetConfidence {
		t.verdict = &Verdict{Answer: answer, Confidence: conf,
			EarlyStopped: t.pending() > 0, DecidedAt: at}
		s.setStatus(t, StatusDecided)
		return
	}
	if t.pending() > 0 {
		return
	}
	// Jury exhausted below the target: emit the MAP verdict if the
	// evidence favours one answer at all, otherwise expire undecided.
	if t.post.Decisive() {
		t.verdict = &Verdict{Answer: answer, Confidence: conf, DecidedAt: at}
		s.setStatus(t, StatusDecided)
		return
	}
	s.setStatus(t, StatusExpired)
}

// Sweep applies wall-clock policy at the given instant: tasks past their
// expiry close without a verdict, and invited jurors past the juror
// timeout are released (journaled as timeout declines, with
// replacements invited under the remaining budget). It returns how many
// jurors were released and how many tasks expired. juryd calls it on a
// timer; tests call it with explicit clocks.
func (s *Store) Sweep(now time.Time) (released, expired int, err error) {
	type action struct {
		task  string
		juror string // "" = expire the task
	}
	s.mu.Lock()
	if s.failed {
		s.mu.Unlock()
		return 0, 0, ErrStoreFailed
	}
	var acts []action
	for _, id := range s.order {
		t := s.tasks[id]
		if t.status.closed() {
			continue
		}
		if !now.Before(t.expiresAt) {
			acts = append(acts, action{task: id})
			continue
		}
		for _, j := range t.jurors {
			if j.State == JurorInvited && !now.Before(j.InvitedAt.Add(t.spec.JurorTimeout)) {
				acts = append(acts, action{task: id, juror: j.ID})
			}
		}
	}
	var lastCommit commit
	for _, a := range acts {
		t := s.tasks[a.task]
		if t.status.closed() {
			continue // an earlier action in this sweep closed it
		}
		if a.juror == "" {
			c, jerr := s.journal(record{Type: recExpire, At: now, Task: a.task})
			if jerr != nil {
				s.mu.Unlock()
				return released, expired, jerr
			}
			lastCommit = c
			s.applyExpire(t)
			expired++
			continue
		}
		if _, cerr := checkVote(t, a.juror); cerr != nil {
			continue // voted or released since the scan (replacement chains)
		}
		c, jerr := s.journal(record{Type: recDecline, At: now, Task: a.task, Juror: a.juror, Timeout: true})
		if jerr != nil {
			s.mu.Unlock()
			return released, expired, jerr
		}
		lastCommit = c
		s.applyDecline(t, a.juror, true, now)
		released++
	}
	s.maybeCompactLocked()
	s.mu.Unlock()
	return released, expired, s.waitDurable(lastCommit)
}

// applyExpire closes the task without a verdict. Callers hold s.mu.
func (s *Store) applyExpire(t *task) {
	if t.status.closed() {
		return
	}
	s.setStatus(t, StatusExpired)
}

// setStatus transitions a task and maintains the gauges. Callers hold
// s.mu.
func (s *Store) setStatus(t *task, next Status) {
	switch t.status {
	case StatusOpen:
		s.nOpen--
	case StatusAwaitingVotes:
		s.nAwaiting--
	case StatusDecided:
		s.nDecided--
	case StatusExpired:
		s.nExpired--
	}
	t.status = next
	switch next {
	case StatusOpen:
		s.nOpen++
	case StatusAwaitingVotes:
		s.nAwaiting++
	case StatusDecided:
		s.nDecided++
	case StatusExpired:
		s.nExpired++
	}
}

// applyRecord replays one journaled mutation. Records passed validation
// before being journaled, so failures indicate a corrupted or
// out-of-order log and abort recovery.
func (s *Store) applyRecord(rec record) error {
	switch rec.Type {
	case recPoolPut:
		jurors := make([]jury.Juror, len(rec.Jurors))
		for i, js := range rec.Jurors {
			jurors[i] = jury.Juror{ID: js.ID, ErrorRate: js.ErrorRate, Cost: js.Cost}
		}
		_, err := s.pools.PutAt(rec.Pool, jurors, rec.At)
		return err
	case recPoolPatch:
		_, err := s.pools.PatchAt(rec.Pool, rec.Updates, rec.At)
		return err
	case recPoolDelete:
		s.pools.Delete(rec.Pool)
		return nil
	case recTaskCreate:
		if rec.Spec == nil {
			return errors.New("tasks: create record missing spec")
		}
		var candidates []jury.Juror
		if p, ok := s.pools.Get(rec.Spec.Pool); ok {
			candidates = p.Sorted()
		}
		s.applyCreate(rec, candidates)
		return nil
	case recVote:
		t, ok := s.tasks[rec.Task]
		if !ok {
			return fmt.Errorf("%w: %q", ErrTaskNotFound, rec.Task)
		}
		if rec.Vote == nil {
			return errors.New("tasks: vote record missing vote")
		}
		if _, err := checkVote(t, rec.Juror); err != nil {
			return err
		}
		s.applyVote(t, rec.Juror, *rec.Vote, rec.At)
		return nil
	case recDecline:
		t, ok := s.tasks[rec.Task]
		if !ok {
			return fmt.Errorf("%w: %q", ErrTaskNotFound, rec.Task)
		}
		if _, err := checkVote(t, rec.Juror); err != nil {
			return err
		}
		s.applyDecline(t, rec.Juror, rec.Timeout, rec.At)
		return nil
	case recExpire:
		t, ok := s.tasks[rec.Task]
		if !ok {
			return fmt.Errorf("%w: %q", ErrTaskNotFound, rec.Task)
		}
		s.applyExpire(t)
		return nil
	default:
		return fmt.Errorf("tasks: unknown wal record type %q", rec.Type)
	}
}
