package tasks

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"juryselect/internal/estimate"
	"juryselect/internal/obs"
	"juryselect/internal/pool"
	"juryselect/jury"
)

// Defaults for the zero Config.
const (
	// DefaultJurorTimeout releases an invited juror who has not answered.
	DefaultJurorTimeout = 60 * time.Second
	// DefaultExpiry closes a task that never reached a verdict.
	DefaultExpiry = time.Hour
	// DefaultCompactEvery is the number of WAL records between automatic
	// snapshot compactions.
	DefaultCompactEvery = 8192
	// DefaultTaskShards is the task-store shard count (rounded up to a
	// power of two if configured otherwise). Votes on tasks in different
	// shards fold under different mutexes.
	DefaultTaskShards = 32
	// maxTaskShards bounds a configured shard count.
	maxTaskShards = 1024
)

// ErrStoreFailed reports that a previous journal write failed: the
// in-memory state may be ahead of the log, so further mutations are
// refused until the process restarts and replays.
var ErrStoreFailed = errors.New("tasks: store failed (journal write error)")

// Config configures Open. The zero value of every field selects a
// sensible default; an empty Dir selects a memory-only store (no
// durability — tests, simulations and ephemeral deployments).
type Config struct {
	// Dir is the WAL directory ("" = memory-only).
	Dir string
	// Sync is the WAL durability mode (default SyncBatch).
	Sync SyncMode
	// BatchInterval is the SyncBatch group-commit window.
	BatchInterval time.Duration
	// TimerCommit restores the legacy timer-driven group commit (fsync
	// once per BatchInterval) instead of the default pipelined
	// committer. Baseline benchmarking only.
	TimerCommit bool
	// Shards is the task-store shard count (0 = DefaultTaskShards;
	// rounded up to a power of two). 1 degenerates to a global lock.
	Shards int
	// Engine is the shared JER engine; nil constructs a default one.
	Engine *jury.Engine
	// Pools is the live juror-pool store the tasks select from; nil
	// constructs an empty one. All pool mutations must flow through the
	// task store (PutPool/PatchPool/DeletePool) so they are journaled.
	Pools *pool.Store
	// CompactEvery triggers snapshot compaction after that many WAL
	// records (0 = DefaultCompactEvery, negative = never).
	CompactEvery int
	// DefaultJurorTimeout, DefaultExpiry and DefaultTargetConfidence fill
	// unset Spec fields at creation.
	DefaultJurorTimeout     time.Duration
	DefaultExpiry           time.Duration
	DefaultTargetConfidence float64
	// Events receives the task event stream (see events.go): every
	// lifecycle transition, emitted identically by live mutations and by
	// WAL replay during Open. Attach before Open so recovery feeds the
	// sink the journaled history. nil disables emission entirely.
	Events EventSink
	// FsyncObserver, when set, receives every WAL fsync latency in
	// nanoseconds (the wal_fsync SLI feed). Called from the committer
	// goroutine outside the WAL lock; it must be cheap and must not call
	// back into the store. Live-only by nature — fsyncs are a property of
	// this process, not of the journaled history.
	FsyncObserver func(latencyNS int64)
	// Now overrides the clock (tests).
	Now func() time.Time
}

// RecoveryStats describes what Open replayed.
type RecoveryStats struct {
	// SnapshotLoaded reports that a compaction snapshot was restored.
	SnapshotLoaded bool
	// Records is the number of intact WAL records replayed.
	Records int64
	// TornBytes is the size of the truncated torn tail (0 = clean log).
	TornBytes int64
	// Pools and Tasks count the recovered state.
	Pools int
	Tasks int
	// Duration is the wall-clock cost of recovery (snapshot load + WAL
	// replay).
	Duration time.Duration
}

// Stats is the store's observability surface: lifecycle gauges plus WAL
// counters, exported by juryd's /metrics.
type Stats struct {
	Open          int
	AwaitingVotes int
	Decided       int
	Expired       int
	Tasks         int
	Compactions   int64
	// Shards is the configured shard count; ShardContention counts
	// mutations that found their shard's mutex already held (a TryLock
	// miss — the cross-task serialization the sharding exists to avoid).
	Shards          int
	ShardContention int64
	WAL             WALStats
}

// taskNode is one link in a shard bucket chain, immutable once a reader
// can observe it.
type taskNode struct {
	t    *task
	next *taskNode
}

// taskIndex is a shard's lock-free hash index: a bucket array of
// atomically published chain heads. Readers load a head and walk;
// writers (holding the shard mutex) push fresh nodes onto heads, so an
// insert is O(1) — a COW map here would copy the whole shard per create
// and make task creation quadratic in store size. Tasks are never
// removed (compaction snapshots them, it does not drop them), so chains
// only grow, and when the average chain passes taskIndexLoad the index
// is rebuilt at double width and swapped in whole.
type taskIndex struct {
	buckets []atomic.Pointer[taskNode]
	mask    uint32
}

const (
	taskIndexMinBuckets = 8
	taskIndexLoad       = 4 // max average chain length before doubling
)

func newTaskIndex(buckets int) *taskIndex {
	return &taskIndex{buckets: make([]atomic.Pointer[taskNode], buckets), mask: uint32(buckets - 1)}
}

// bucket picks the chain for a task-ID hash. The shard was picked from
// the hash's low bits, so the bucket uses the bits above the maximum
// shard mask.
func (ix *taskIndex) bucket(h uint32) *atomic.Pointer[taskNode] {
	return &ix.buckets[(h>>10)&ix.mask]
}

// taskHash is FNV-1a over the task ID; the low bits pick the shard and
// the high bits the bucket within it.
func taskHash(id string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(id); i++ {
		h = (h ^ uint32(id[i])) * 16777619
	}
	return h
}

// shard is one slice of the task index. Mutations hold mu; reads load
// the index pointer and each task's published view snapshot, so GET and
// the sweeper's scan take no locks at all (same idiom as the pool
// store's 9ns snapshot reads).
type shard struct {
	mu        sync.Mutex
	idx       atomic.Pointer[taskIndex]
	count     int // tasks in this shard; guarded by mu
	contended atomic.Int64
}

// lockContended acquires the shard mutex, counting contention.
func (sh *shard) lockContended() {
	if !sh.mu.TryLock() {
		sh.contended.Add(1)
		sh.mu.Lock()
	}
}

// get returns the task without locking.
func (sh *shard) get(id string) *task {
	for n := sh.idx.Load().bucket(taskHash(id)).Load(); n != nil; n = n.next {
		if n.t.id == id {
			return n.t
		}
	}
	return nil
}

// insert adds a task. Callers hold sh.mu (or are the only goroutine,
// during recovery).
func (sh *shard) insert(t *task) {
	idx := sh.idx.Load()
	if sh.count+1 > len(idx.buckets)*taskIndexLoad {
		idx = sh.rebuild(idx)
	}
	b := idx.bucket(taskHash(t.id))
	b.Store(&taskNode{t: t, next: b.Load()})
	sh.count++
}

// rebuild doubles the index. The new buckets are filled before the
// index pointer is published, so readers see either the old complete
// index or the new one.
func (sh *shard) rebuild(old *taskIndex) *taskIndex {
	next := newTaskIndex(len(old.buckets) * 2)
	for i := range old.buckets {
		for n := old.buckets[i].Load(); n != nil; n = n.next {
			b := next.bucket(taskHash(n.t.id))
			b.Store(&taskNode{t: n.t, next: b.Load()})
		}
	}
	sh.idx.Store(next)
	return next
}

// forEach visits every task in the shard (lock-free; the snapshot is
// whatever index was published at the load).
func (sh *shard) forEach(f func(*task)) {
	idx := sh.idx.Load()
	for i := range idx.buckets {
		for n := idx.buckets[i].Load(); n != nil; n = n.next {
			f(n.t)
		}
	}
}

// Store is the durable decision-task store: the lifecycle state machine,
// the journaled pool mutations, and the recovery machinery. All methods
// are safe for concurrent use.
//
// Concurrency model: tasks live in a fixed shard array keyed by task-ID
// hash; each mutation applies and journals under its shard's mutex
// only, so votes on distinct tasks fold in parallel and share fsyncs
// through the WAL's pipelined committer. poolMu orders task creation
// (read side) against journaled pool mutations (write side): a create
// snapshots the pool and appends its record under RLock, so no pool
// write can slip between the snapshot and the record — the invariant
// byte-identical replay depends on. Lock order is poolMu before shard
// mutexes; compaction takes everything.
type Store struct {
	wal   atomic.Pointer[WAL] // nil for memory-only stores
	dir   string
	epoch uint64 // guarded by holding every lock (Open/compaction only)

	pools  *pool.Store
	eng    *jury.Engine
	now    func() time.Time
	events EventSink

	defaultJurorTimeout time.Duration
	defaultExpiry       time.Duration
	defaultTarget       float64
	compactEvery        int
	sinceCompact        atomic.Int64
	compactGate         sync.Mutex // serializes compaction attempts
	compactions         atomic.Int64

	poolMu    sync.RWMutex
	shards    []shard
	shardMask uint32
	nextTask  atomic.Uint64
	failed    atomic.Bool // sticky: a journal write failed after state applied

	nTasks, nOpen, nAwaiting, nDecided, nExpired atomic.Int64

	// Sweeper liveness: the stall watchdog reads these to tell "nothing
	// is overdue" apart from "the sweeper stopped running".
	sweeps        atomic.Int64
	lastSweepNano atomic.Int64 // unix nanos of the last completed Sweep; 0 = never
	sweepReleased atomic.Int64
	sweepExpired  atomic.Int64

	recovery RecoveryStats
}

// walFile names the epoch's log file inside dir.
func walFile(dir string, epoch uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%06d.log", epoch))
}

// snapshotFileName is the compaction snapshot inside dir.
const snapshotFileName = "snapshot.json"

// Open builds a Store, recovering state from Dir when set: it loads the
// compaction snapshot (if any), replays the current WAL epoch —
// truncating a torn tail — and resumes exactly where the previous
// process stopped.
func Open(cfg Config) (*Store, error) {
	s := &Store{
		pools:               cfg.Pools,
		eng:                 cfg.Engine,
		now:                 cfg.Now,
		events:              cfg.Events,
		defaultJurorTimeout: cfg.DefaultJurorTimeout,
		defaultExpiry:       cfg.DefaultExpiry,
		defaultTarget:       cfg.DefaultTargetConfidence,
		compactEvery:        cfg.CompactEvery,
		dir:                 cfg.Dir,
	}
	nShards := cfg.Shards
	if nShards <= 0 {
		nShards = DefaultTaskShards
	}
	if nShards > maxTaskShards {
		nShards = maxTaskShards
	}
	for nShards&(nShards-1) != 0 {
		nShards++
	}
	s.shards = make([]shard, nShards)
	s.shardMask = uint32(nShards - 1)
	for i := range s.shards {
		s.shards[i].idx.Store(newTaskIndex(taskIndexMinBuckets))
	}
	if s.pools == nil {
		s.pools = pool.NewStore()
	}
	if s.eng == nil {
		s.eng = jury.NewEngine(jury.BatchOptions{})
	}
	if s.now == nil {
		s.now = func() time.Time { return time.Now().UTC() }
	}
	if s.defaultJurorTimeout <= 0 {
		s.defaultJurorTimeout = DefaultJurorTimeout
	}
	if s.defaultExpiry <= 0 {
		s.defaultExpiry = DefaultExpiry
	}
	if s.defaultTarget == 0 {
		s.defaultTarget = estimate.DefaultTargetConfidence
	}
	if s.compactEvery == 0 {
		s.compactEvery = DefaultCompactEvery
	}
	if s.dir == "" {
		return s, nil
	}

	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return nil, err
	}
	start := time.Now()
	if err := s.loadSnapshot(); err != nil {
		return nil, err
	}
	wal, records, err := OpenWAL(walFile(s.dir, s.epoch), WALOptions{
		Sync:          cfg.Sync,
		BatchInterval: cfg.BatchInterval,
		TimerCommit:   cfg.TimerCommit,
		FsyncObserver: cfg.FsyncObserver,
	})
	if err != nil {
		return nil, err
	}
	s.wal.Store(wal)
	if err := s.replayRecords(records); err != nil {
		wal.Close() //nolint:errcheck
		return nil, err
	}
	s.publishAll()
	s.sinceCompact.Store(int64(len(records)))
	st := wal.Stats()
	s.recovery.Records = st.ReplayRecords
	s.recovery.TornBytes = st.TornBytes
	s.recovery.Pools = s.pools.Len()
	s.recovery.Tasks = int(s.nTasks.Load())
	s.recovery.Duration = time.Since(start)
	s.removeStaleWALs()
	return s, nil
}

// shardFor hashes a task ID (FNV-1a) onto its shard.
func (s *Store) shardFor(id string) *shard {
	return &s.shards[taskHash(id)&s.shardMask]
}

// lookup returns the task without locking (index load + chain walk).
func (s *Store) lookup(id string) *task {
	return s.shardFor(id).get(id)
}

// publish re-renders the task's lock-free view snapshot. Callers hold
// the task's shard mutex (or are single-threaded, during recovery).
func publish(t *task) View {
	v := t.view()
	t.snap.Store(&v)
	return v
}

// publishAll renders every recovered task's snapshot once, after replay
// (per-mutation publication during replay would render a full view per
// vote for nothing).
func (s *Store) publishAll() {
	for i := range s.shards {
		s.shards[i].forEach(func(t *task) { publish(t) })
	}
}

// tasksSorted returns every task ordered by ID — creation order, since
// IDs are zero-padded sequence numbers.
func (s *Store) tasksSorted() []*task {
	out := make([]*task, 0, s.nTasks.Load())
	for i := range s.shards {
		s.shards[i].forEach(func(t *task) { out = append(out, t) })
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// removeStaleWALs deletes log files from epochs other than the current
// one (left behind by a crash between compaction steps; their contents
// are covered by the snapshot).
func (s *Store) removeStaleWALs() {
	matches, err := filepath.Glob(filepath.Join(s.dir, "wal-*.log"))
	if err != nil {
		return
	}
	cur := walFile(s.dir, s.epoch)
	for _, m := range matches {
		if m != cur {
			os.Remove(m) //nolint:errcheck // best-effort cleanup
		}
	}
}

// Recovery returns what Open replayed.
func (s *Store) Recovery() RecoveryStats { return s.recovery }

// Pools returns the live juror-pool store. Reads are free; mutations
// must go through PutPool/PatchPool/DeletePool to stay journaled.
func (s *Store) Pools() *pool.Store { return s.pools }

// Engine returns the shared JER engine.
func (s *Store) Engine() *jury.Engine { return s.eng }

// Durable reports whether the store journals to disk.
func (s *Store) Durable() bool { return s.wal.Load() != nil }

// lockAll acquires every mutation lock in canonical order (poolMu, then
// shards by index): compaction and Close exclude all writers.
func (s *Store) lockAll() {
	s.poolMu.Lock()
	for i := range s.shards {
		s.shards[i].mu.Lock()
	}
}

func (s *Store) unlockAll() {
	for i := range s.shards {
		s.shards[i].mu.Unlock()
	}
	s.poolMu.Unlock()
}

// Close flushes and closes the WAL. Further mutations fail.
func (s *Store) Close() error {
	s.lockAll()
	defer s.unlockAll()
	w := s.wal.Load()
	if w == nil {
		return nil
	}
	return w.Close()
}

// Stats returns the lifecycle gauges and WAL counters.
func (s *Store) Stats() Stats {
	st := Stats{
		Open:          int(s.nOpen.Load()),
		AwaitingVotes: int(s.nAwaiting.Load()),
		Decided:       int(s.nDecided.Load()),
		Expired:       int(s.nExpired.Load()),
		Tasks:         int(s.nTasks.Load()),
		Compactions:   s.compactions.Load(),
		Shards:        len(s.shards),
	}
	for i := range s.shards {
		st.ShardContention += s.shards[i].contended.Load()
	}
	if w := s.wal.Load(); w != nil {
		st.WAL = w.Stats()
	}
	return st
}

// commit identifies a journaled record for the durability wait: the WAL
// instance it was appended to (a compaction may swap the store's WAL
// before the caller waits) and its sequence there.
type commit struct {
	wal *WAL
	seq uint64
}

// recBufPool recycles record-encoding buffers: AppendAsync copies the
// frame into the WAL's write buffer synchronously, so the buffer is
// reusable the moment journal returns.
var recBufPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 512); return &b },
}

// journal appends a record to the WAL (if any) without waiting for
// durability, returning the commit token to pass to waitDurable.
// Callers hold the lock that orders this mutation (the task's shard
// mutex, or poolMu for pool writes), so per-task and per-pool WAL order
// always equals application order.
func (s *Store) journal(rec *record) (commit, error) {
	w := s.wal.Load()
	if w == nil {
		return commit{}, nil
	}
	bp := recBufPool.Get().(*[]byte)
	buf, err := encodeRecord((*bp)[:0], rec)
	if err != nil {
		recBufPool.Put(bp)
		return commit{}, err
	}
	seq, err := w.AppendAsync(buf)
	*bp = buf
	recBufPool.Put(bp)
	if err != nil {
		// The in-memory state this record describes was (or is about to
		// be) applied; the journal no longer matches. Fail the store:
		// restarting and replaying the intact log is the recovery path.
		s.failed.Store(true)
		return commit{}, fmt.Errorf("%w: %v", ErrStoreFailed, err)
	}
	s.sinceCompact.Add(1)
	return commit{wal: w, seq: seq}, nil
}

// waitDurable blocks until the journaled record is durable. Called
// without any store lock so concurrent mutations group-commit into
// shared fsyncs — only the responder parks here. A record's WAL may
// have been superseded by a compaction meanwhile; its Close
// acknowledged everything buffered, so the wait still ends. A traced
// request (ctx carries an obs.Trace) gets the wait recorded as a
// wal_wait span; untraced requests pay no clock reads here.
func (s *Store) waitDurable(ctx context.Context, c commit) error {
	if c.wal == nil || c.seq == 0 {
		return nil
	}
	if tr := obs.TraceFromContext(ctx); tr != nil {
		start := time.Now()
		err := c.wal.WaitDurable(c.seq)
		tr.Add(obs.StageWALWait, time.Since(start).Nanoseconds())
		return err
	}
	return c.wal.WaitDurable(c.seq)
}

// maybeCompact triggers compaction when the log has grown past the
// threshold. Called after the mutation's locks are released; the
// compaction itself stops the world (all locks, in order).
func (s *Store) maybeCompact() {
	if s.wal.Load() == nil || s.compactEvery < 0 || s.failed.Load() {
		return
	}
	if s.sinceCompact.Load() < int64(s.compactEvery) {
		return
	}
	if !s.compactGate.TryLock() {
		return // a compaction is already running
	}
	defer s.compactGate.Unlock()
	if s.sinceCompact.Load() < int64(s.compactEvery) {
		return
	}
	s.lockAll()
	defer s.unlockAll()
	if err := s.compactLocked(); err != nil {
		// Compaction failure is not fatal: the log keeps growing and the
		// next threshold crossing retries.
		s.sinceCompact.Store(0)
	}
}

// --- journaled pool mutations -------------------------------------------

// PutPool journals and applies a full pool replacement.
func (s *Store) PutPool(name string, jurors []jury.Juror) (*pool.Pool, error) {
	at := s.now()
	s.poolMu.Lock()
	if s.failed.Load() {
		s.poolMu.Unlock()
		return nil, ErrStoreFailed
	}
	p, err := s.pools.PutAt(name, jurors, at)
	if err != nil {
		s.poolMu.Unlock()
		return nil, err
	}
	states := make([]pool.JurorState, len(jurors))
	for i, j := range jurors {
		states[i] = pool.JurorState{ID: j.ID, ErrorRate: j.ErrorRate, Cost: j.Cost}
	}
	c, err := s.journal(&record{Type: recPoolPut, At: at, Pool: name, Jurors: states})
	s.poolMu.Unlock()
	s.maybeCompact()
	if err != nil {
		return nil, err
	}
	if err := s.waitDurable(context.Background(), c); err != nil {
		return nil, err
	}
	return p, nil
}

// PatchPool journals and applies incremental pool updates.
func (s *Store) PatchPool(name string, updates []pool.JurorUpdate) (*pool.Pool, error) {
	at := s.now()
	s.poolMu.Lock()
	if s.failed.Load() {
		s.poolMu.Unlock()
		return nil, ErrStoreFailed
	}
	p, err := s.pools.PatchAt(name, updates, at)
	if err != nil {
		s.poolMu.Unlock()
		return nil, err
	}
	c, err := s.journal(&record{Type: recPoolPatch, At: at, Pool: name, Updates: updates})
	s.poolMu.Unlock()
	s.maybeCompact()
	if err != nil {
		return nil, err
	}
	if err := s.waitDurable(context.Background(), c); err != nil {
		return nil, err
	}
	return p, nil
}

// DeletePool journals and applies a pool deletion. It reports whether
// the pool existed.
func (s *Store) DeletePool(name string) (bool, error) {
	s.poolMu.Lock()
	if s.failed.Load() {
		s.poolMu.Unlock()
		return false, ErrStoreFailed
	}
	if !s.pools.Delete(name) {
		s.poolMu.Unlock()
		return false, nil
	}
	c, err := s.journal(&record{Type: recPoolDelete, Pool: name})
	s.poolMu.Unlock()
	s.maybeCompact()
	if err != nil {
		return true, err
	}
	return true, s.waitDurable(context.Background(), c)
}

// --- task lifecycle ------------------------------------------------------

// Create selects a jury for the spec from the named pool's current
// snapshot, journals the task and returns its initial view. The
// selection itself runs outside every store lock on the immutable
// snapshot.
func (s *Store) Create(ctx context.Context, spec Spec) (View, error) {
	spec, err := s.normalizeSpec(spec)
	if err != nil {
		return View{}, err
	}
	p, ok := s.pools.Get(spec.Pool)
	if !ok {
		return View{}, fmt.Errorf("%w: %q", pool.ErrPoolNotFound, spec.Pool)
	}
	var sel jury.Selection
	if spec.Strategy == StrategyPay {
		sel, err = s.eng.SelectBudgetedContext(ctx, p.Sorted(), spec.Budget)
	} else {
		sel, err = s.eng.SelectAltruisticSnapshot(ctx, p.Sorted())
	}
	if err != nil {
		return View{}, err
	}
	if spec.MaxInvites == 0 {
		spec.MaxInvites = 2 * len(sel.Jurors)
	}
	jurySel := make([]recJuror, len(sel.Jurors))
	for i, j := range sel.Jurors {
		jurySel[i] = recJuror{ID: j.ID, ErrorRate: j.ErrorRate, Cost: j.Cost}
	}
	at := s.now()

	// poolMu (read side) pins the pool against journaled pool mutations
	// for the span of snapshot-read + record-append: the create record's
	// position in the log matches the pool state replay will see there.
	// Using the pre-lock snapshot would let a concurrently journaled
	// patch slip between it and the create record, making replay build a
	// different replacement-candidate view than the live task used (and
	// then reject the live run's own decline/vote records).
	s.poolMu.RLock()
	if s.failed.Load() {
		s.poolMu.RUnlock()
		return View{}, ErrStoreFailed
	}
	p, ok = s.pools.Get(spec.Pool)
	if !ok {
		s.poolMu.RUnlock()
		return View{}, fmt.Errorf("%w: %q", pool.ErrPoolNotFound, spec.Pool)
	}
	seqNo := s.nextTask.Add(1) - 1
	rec := record{
		Type:         recTaskCreate,
		At:           at,
		Seq:          seqNo,
		Spec:         &spec,
		Jury:         jurySel,
		PoolVersion:  p.Version,
		PredictedJER: sel.JER,
	}
	id := taskID(seqNo)
	sh := s.shardFor(id)
	sh.lockContended()
	tok, err := s.journal(&rec)
	if err != nil {
		sh.mu.Unlock()
		s.poolMu.RUnlock()
		return View{}, err
	}
	t := s.applyCreate(sh, &rec, p.Sorted())
	view := publish(t)
	sh.mu.Unlock()
	s.poolMu.RUnlock()
	s.maybeCompact()
	if err := s.waitDurable(ctx, tok); err != nil {
		return View{}, err
	}
	return view, nil
}

// taskID renders a sequence number as the external task ID. Zero-padded,
// so lexicographic ID order is creation order.
func taskID(seq uint64) string { return fmt.Sprintf("t%08d", seq) }

// applyCreate inserts the journaled task. Callers hold the shard mutex
// (live) or are single-threaded (replay).
func (s *Store) applyCreate(sh *shard, rec *record, candidates []jury.Juror) *task {
	t := &task{
		id:           taskID(rec.Seq),
		spec:         *rec.Spec,
		status:       StatusOpen,
		poolVersion:  rec.PoolVersion,
		predictedJER: rec.PredictedJER,
		createdAt:    rec.At,
		expiresAt:    rec.At.Add(rec.Spec.ExpiresIn),
		jurors:       make([]TaskJuror, len(rec.Jury)),
		index:        make(map[string]int, len(rec.Jury)),
		candidates:   candidates,
	}
	for i, j := range rec.Jury {
		t.jurors[i] = TaskJuror{ID: j.ID, ErrorRate: j.ErrorRate, Cost: j.Cost,
			State: JurorInvited, InvitedAt: rec.At}
		t.index[j.ID] = i
	}
	sh.insert(t)
	for next := s.nextTask.Load(); rec.Seq >= next; next = s.nextTask.Load() {
		if s.nextTask.CompareAndSwap(next, rec.Seq+1) {
			break
		}
	}
	s.nTasks.Add(1)
	s.nOpen.Add(1)
	s.emitCreated(t, rec)
	return t
}

// Get returns the task's current view: two atomic loads, no locks.
func (s *Store) Get(id string) (View, error) {
	t := s.lookup(id)
	if t == nil {
		return View{}, fmt.Errorf("%w: %q", ErrTaskNotFound, id)
	}
	return *t.snap.Load(), nil
}

// List returns every task's view in creation order, optionally filtered
// by status ("" = all). Lock-free: it reads the published snapshots.
func (s *Store) List(status Status) []View {
	ts := s.tasksSorted()
	out := make([]View, 0, len(ts))
	for _, t := range ts {
		v := t.snap.Load()
		if status != "" && v.Status != status {
			continue
		}
		out = append(out, *v)
	}
	return out
}

// checkVote validates a prospective vote/decline without mutating.
func checkVote(t *task, jurorID string) (int, error) {
	if t.status.closed() {
		return 0, fmt.Errorf("%w: %s is %s", ErrTaskClosed, t.id, t.status)
	}
	i, ok := t.index[jurorID]
	if !ok {
		return 0, fmt.Errorf("%w: %q on task %s", ErrNotInvited, jurorID, t.id)
	}
	switch t.jurors[i].State {
	case JurorVoted:
		return 0, fmt.Errorf("%w: %q on task %s", ErrAlreadyVoted, jurorID, t.id)
	case JurorDeclined, JurorTimedOut:
		return 0, fmt.Errorf("%w: %q on task %s", ErrJurorReleased, jurorID, t.id)
	}
	return i, nil
}

// Vote records one juror's vote, folds it into the posterior, and closes
// the task when the confidence target is crossed (sequential early stop)
// or the jury is exhausted.
func (s *Store) Vote(ctx context.Context, id, jurorID string, voteYes bool) (View, error) {
	at := s.now()
	if s.failed.Load() {
		return View{}, ErrStoreFailed
	}
	sh := s.shardFor(id)
	sh.lockContended()
	t := sh.get(id)
	if t == nil {
		sh.mu.Unlock()
		return View{}, fmt.Errorf("%w: %q", ErrTaskNotFound, id)
	}
	if _, err := checkVote(t, jurorID); err != nil {
		sh.mu.Unlock()
		return View{}, err
	}
	v := voteYes
	c, err := s.journal(&record{Type: recVote, At: at, Task: id, Juror: jurorID, Vote: &v})
	if err != nil {
		sh.mu.Unlock()
		return View{}, err
	}
	s.applyVote(t, jurorID, voteYes, at)
	view := publish(t)
	sh.mu.Unlock()
	s.maybeCompact()
	if err := s.waitDurable(ctx, c); err != nil {
		return View{}, err
	}
	return view, nil
}

// applyVote applies a validated vote. Callers hold the shard mutex.
func (s *Store) applyVote(t *task, jurorID string, voteYes bool, at time.Time) {
	i := t.index[jurorID]
	v := voteYes
	t.jurors[i].Vote = &v
	t.jurors[i].State = JurorVoted
	// The rate was validated at pool ingest and pinned at invitation, so
	// Observe cannot fail.
	t.post.Observe(voteYes, t.jurors[i].ErrorRate) //nolint:errcheck
	if s.events != nil {
		s.events.TaskEvent(Event{Type: EvVoteRecorded, Task: t.id, At: at,
			Juror: jurorID, ErrorRate: t.jurors[i].ErrorRate, Vote: voteYes,
			LatencyNS: at.Sub(t.jurors[i].InvitedAt).Nanoseconds()})
	}
	if t.status == StatusOpen {
		s.setStatus(t, StatusAwaitingVotes)
	}
	s.closeCheck(t, at)
}

// Decline releases a juror who refused the invitation and invites the
// next-best replacement under the remaining budget.
func (s *Store) Decline(ctx context.Context, id, jurorID string) (View, error) {
	return s.decline(ctx, id, jurorID, false)
}

func (s *Store) decline(ctx context.Context, id, jurorID string, timeout bool) (View, error) {
	at := s.now()
	if s.failed.Load() {
		return View{}, ErrStoreFailed
	}
	sh := s.shardFor(id)
	sh.lockContended()
	t := sh.get(id)
	if t == nil {
		sh.mu.Unlock()
		return View{}, fmt.Errorf("%w: %q", ErrTaskNotFound, id)
	}
	if _, err := checkVote(t, jurorID); err != nil {
		sh.mu.Unlock()
		return View{}, err
	}
	c, err := s.journal(&record{Type: recDecline, At: at, Task: id, Juror: jurorID, Timeout: timeout})
	if err != nil {
		sh.mu.Unlock()
		return View{}, err
	}
	s.applyDecline(t, jurorID, timeout, at)
	view := publish(t)
	sh.mu.Unlock()
	s.maybeCompact()
	if err := s.waitDurable(ctx, c); err != nil {
		return View{}, err
	}
	return view, nil
}

// applyDecline releases the juror, invites a replacement when one fits,
// and re-checks closure. Callers hold the shard mutex.
func (s *Store) applyDecline(t *task, jurorID string, timeout bool, at time.Time) {
	i := t.index[jurorID]
	if timeout {
		t.jurors[i].State = JurorTimedOut
	} else {
		t.jurors[i].State = JurorDeclined
	}
	t.declines++
	if s.events != nil {
		s.events.TaskEvent(Event{Type: EvJurorReleased, Task: t.id, At: at,
			Juror: jurorID, ErrorRate: t.jurors[i].ErrorRate, Timeout: timeout})
	}
	s.inviteReplacement(t, at)
	s.closeCheck(t, at)
}

// inviteReplacement invites the next-best candidate from the task's
// creation snapshot: lowest ε not yet invited and, under the pay
// strategy, fitting the budget freed by releases. Deterministic — the
// candidate view is ε-sorted and immutable — so WAL replay re-derives
// the same invitation.
func (s *Store) inviteReplacement(t *task, at time.Time) {
	if t.status.closed() || len(t.jurors) >= t.spec.MaxInvites {
		return
	}
	var remaining float64
	if t.spec.Strategy == StrategyPay {
		remaining = t.spec.Budget - t.committedCost()
	}
	for _, c := range t.candidates {
		if _, invited := t.index[c.ID]; invited {
			continue
		}
		if t.spec.Strategy == StrategyPay && c.Cost > remaining {
			continue
		}
		t.jurors = append(t.jurors, TaskJuror{ID: c.ID, ErrorRate: c.ErrorRate, Cost: c.Cost,
			State: JurorInvited, InvitedAt: at})
		t.index[c.ID] = len(t.jurors) - 1
		if s.events != nil {
			s.events.TaskEvent(Event{Type: EvJurorInvited, Task: t.id, At: at,
				Juror: c.ID, ErrorRate: c.ErrorRate})
		}
		return
	}
}

// closeCheck applies the sequential stopping rule. Callers hold the
// shard mutex.
func (s *Store) closeCheck(t *task, at time.Time) {
	if t.status.closed() {
		return
	}
	answer, conf := t.post.Verdict()
	if t.spec.TargetConfidence < 1 && conf >= t.spec.TargetConfidence {
		t.verdict = &Verdict{Answer: answer, Confidence: conf,
			EarlyStopped: t.pending() > 0, DecidedAt: at}
		s.setStatus(t, StatusDecided)
		s.emitClosed(t, at)
		return
	}
	if t.pending() > 0 {
		return
	}
	// Jury exhausted below the target: emit the MAP verdict if the
	// evidence favours one answer at all, otherwise expire undecided.
	if t.post.Decisive() {
		t.verdict = &Verdict{Answer: answer, Confidence: conf, DecidedAt: at}
		s.setStatus(t, StatusDecided)
		s.emitClosed(t, at)
		return
	}
	s.setStatus(t, StatusExpired)
	s.emitClosed(t, at)
}

// Sweep applies wall-clock policy at the given instant: tasks past their
// expiry close without a verdict, and invited jurors past the juror
// timeout are released (journaled as timeout declines, with
// replacements invited under the remaining budget). It returns how many
// jurors were released and how many tasks expired. juryd calls it on a
// timer; tests call it with explicit clocks.
//
// The scan reads the lock-free view snapshots (spec and expiry are
// immutable after creation); each resulting action revalidates under
// its task's shard mutex before journaling.
func (s *Store) Sweep(now time.Time) (released, expired int, err error) {
	if s.failed.Load() {
		return 0, 0, ErrStoreFailed
	}
	type action struct {
		task  string
		juror string // "" = expire the task
	}
	var acts []action
	for _, t := range s.tasksSorted() {
		v := t.snap.Load()
		if v == nil || v.Status.closed() {
			continue
		}
		if !now.Before(t.expiresAt) {
			acts = append(acts, action{task: t.id})
			continue
		}
		for _, j := range v.Jurors {
			if j.State == JurorInvited && !now.Before(j.InvitedAt.Add(t.spec.JurorTimeout)) {
				acts = append(acts, action{task: t.id, juror: j.ID})
			}
		}
	}
	var lastCommit commit
	for _, a := range acts {
		sh := s.shardFor(a.task)
		sh.lockContended()
		t := sh.get(a.task)
		if t == nil || t.status.closed() {
			sh.mu.Unlock()
			continue // closed since the scan (a vote, or an earlier action)
		}
		if a.juror == "" {
			c, jerr := s.journal(&record{Type: recExpire, At: now, Task: a.task})
			if jerr != nil {
				sh.mu.Unlock()
				return released, expired, jerr
			}
			lastCommit = c
			s.applyExpire(t, now)
			publish(t)
			expired++
		} else {
			if _, cerr := checkVote(t, a.juror); cerr != nil {
				sh.mu.Unlock()
				continue // voted or released since the scan (replacement chains)
			}
			c, jerr := s.journal(&record{Type: recDecline, At: now, Task: a.task, Juror: a.juror, Timeout: true})
			if jerr != nil {
				sh.mu.Unlock()
				return released, expired, jerr
			}
			lastCommit = c
			s.applyDecline(t, a.juror, true, now)
			publish(t)
			released++
		}
		sh.mu.Unlock()
	}
	s.maybeCompact()
	s.sweepReleased.Add(int64(released))
	s.sweepExpired.Add(int64(expired))
	s.sweeps.Add(1)
	s.lastSweepNano.Store(now.UnixNano())
	return released, expired, s.waitDurable(context.Background(), lastCommit)
}

// SweepProgress is the sweeper's liveness record: how often it has run
// and what it has done. The stall watchdog reads it to distinguish
// "nothing was overdue" from "the sweeper stopped running".
type SweepProgress struct {
	// Sweeps counts completed Sweep calls since open.
	Sweeps int64
	// LastSweepAt is the `now` passed to the most recent completed Sweep
	// (zero before the first).
	LastSweepAt time.Time
	// Released and Expired total the sweeper's actions since open.
	Released int64
	Expired  int64
}

// SweepProgress returns the sweeper's liveness counters.
func (s *Store) SweepProgress() SweepProgress {
	p := SweepProgress{
		Sweeps:   s.sweeps.Load(),
		Released: s.sweepReleased.Load(),
		Expired:  s.sweepExpired.Load(),
	}
	if ns := s.lastSweepNano.Load(); ns != 0 {
		p.LastSweepAt = time.Unix(0, ns).UTC()
	}
	return p
}

// StalledInvites scans for invited jurors whose juror timeout elapsed
// at least grace ago without the sweeper releasing them — the signal
// that sweeping has stalled (a healthy sweeper releases overdue jurors
// within one interval). It returns the number of open tasks carrying at
// least one such juror and the largest overdue amount (time past
// timeout+grace). The scan is lock-free: published view snapshots plus
// the immutable spec.
func (s *Store) StalledInvites(now time.Time, grace time.Duration) (tasks int, oldest time.Duration) {
	if grace < 0 {
		grace = 0
	}
	for i := range s.shards {
		s.shards[i].forEach(func(t *task) {
			v := t.snap.Load()
			if v == nil || v.Status.closed() {
				return
			}
			stalled := false
			for _, j := range v.Jurors {
				if j.State != JurorInvited {
					continue
				}
				overdue := now.Sub(j.InvitedAt.Add(t.spec.JurorTimeout + grace))
				if overdue >= 0 {
					stalled = true
					if overdue > oldest {
						oldest = overdue
					}
				}
			}
			if stalled {
				tasks++
			}
		})
	}
	return tasks, oldest
}

// applyExpire closes the task without a verdict. Callers hold the shard
// mutex.
func (s *Store) applyExpire(t *task, at time.Time) {
	if t.status.closed() {
		return
	}
	s.setStatus(t, StatusExpired)
	s.emitClosed(t, at)
}

// setStatus transitions a task and maintains the gauges. Callers hold
// the shard mutex.
func (s *Store) setStatus(t *task, next Status) {
	switch t.status {
	case StatusOpen:
		s.nOpen.Add(-1)
	case StatusAwaitingVotes:
		s.nAwaiting.Add(-1)
	case StatusDecided:
		s.nDecided.Add(-1)
	case StatusExpired:
		s.nExpired.Add(-1)
	}
	t.status = next
	switch next {
	case StatusOpen:
		s.nOpen.Add(1)
	case StatusAwaitingVotes:
		s.nAwaiting.Add(1)
	case StatusDecided:
		s.nDecided.Add(1)
	case StatusExpired:
		s.nExpired.Add(1)
	}
}

// applyRecord replays one journaled mutation. Records passed validation
// before being journaled, so failures indicate a corrupted or
// out-of-order log and abort recovery. Replay is single-threaded: no
// locks are taken.
func (s *Store) applyRecord(rec *record) error {
	switch rec.Type {
	case recPoolPut:
		jurors := make([]jury.Juror, len(rec.Jurors))
		for i, js := range rec.Jurors {
			jurors[i] = jury.Juror{ID: js.ID, ErrorRate: js.ErrorRate, Cost: js.Cost}
		}
		_, err := s.pools.PutAt(rec.Pool, jurors, rec.At)
		return err
	case recPoolPatch:
		_, err := s.pools.PatchAt(rec.Pool, rec.Updates, rec.At)
		return err
	case recPoolDelete:
		s.pools.Delete(rec.Pool)
		return nil
	case recTaskCreate:
		if rec.Spec == nil {
			return errors.New("tasks: create record missing spec")
		}
		var candidates []jury.Juror
		if p, ok := s.pools.Get(rec.Spec.Pool); ok {
			candidates = p.Sorted()
		}
		s.applyCreate(s.shardFor(taskID(rec.Seq)), rec, candidates)
		return nil
	case recVote:
		t := s.lookup(rec.Task)
		if t == nil {
			return fmt.Errorf("%w: %q", ErrTaskNotFound, rec.Task)
		}
		if rec.Vote == nil {
			return errors.New("tasks: vote record missing vote")
		}
		if _, err := checkVote(t, rec.Juror); err != nil {
			return err
		}
		s.applyVote(t, rec.Juror, *rec.Vote, rec.At)
		return nil
	case recDecline:
		t := s.lookup(rec.Task)
		if t == nil {
			return fmt.Errorf("%w: %q", ErrTaskNotFound, rec.Task)
		}
		if _, err := checkVote(t, rec.Juror); err != nil {
			return err
		}
		s.applyDecline(t, rec.Juror, rec.Timeout, rec.At)
		return nil
	case recExpire:
		t := s.lookup(rec.Task)
		if t == nil {
			return fmt.Errorf("%w: %q", ErrTaskNotFound, rec.Task)
		}
		s.applyExpire(t, rec.At)
		return nil
	default:
		return fmt.Errorf("tasks: unknown wal record type %q", rec.Type)
	}
}
