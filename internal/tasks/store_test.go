package tasks

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"juryselect/internal/pool"
	"juryselect/jury"
)

// fakeClock is a settable deterministic clock.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 7, 1, 12, 0, 0, 0, time.UTC)}
}
func (c *fakeClock) now() time.Time                    { return c.t }
func (c *fakeClock) advance(d time.Duration) time.Time { c.t = c.t.Add(d); return c.t }

// crowdJurors is a crowd where the altruistic optimum is a small prefix:
// three strong jurors and a tail of weak ones.
func crowdJurors(n int) []jury.Juror {
	out := make([]jury.Juror, n)
	for i := range out {
		rate := 0.1 + 0.35*float64(i)/float64(n)
		out[i] = jury.Juror{ID: fmt.Sprintf("j%03d", i), ErrorRate: rate, Cost: 0.1 + float64(i%5)*0.1}
	}
	return out
}

// newTestStore builds a memory-only store with a seeded pool and a fake
// clock.
func newTestStore(t *testing.T, n int) (*Store, *fakeClock) {
	t.Helper()
	clk := newFakeClock()
	s, err := Open(Config{Now: clk.now})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.PutPool("crowd", crowdJurors(n)); err != nil {
		t.Fatal(err)
	}
	return s, clk
}

func TestCreateSelectsJuryAndRecordsPoolVersion(t *testing.T) {
	s, _ := newTestStore(t, 20)
	v, err := s.Create(context.Background(), Spec{Pool: "crowd"})
	if err != nil {
		t.Fatal(err)
	}
	if v.ID != "t00000000" || v.Status != StatusOpen {
		t.Fatalf("view = %+v", v)
	}
	if v.PoolVersion != 1 {
		t.Fatalf("pool version %d, want 1", v.PoolVersion)
	}
	if len(v.Jurors)%2 != 1 {
		t.Fatalf("even jury of %d", len(v.Jurors))
	}
	if v.PredictedJER <= 0 || v.PredictedJER >= 1 {
		t.Fatalf("predicted JER %g", v.PredictedJER)
	}
	// Defaults are normalized into the stored spec.
	if v.TargetConfidence != 0.9 {
		t.Fatalf("target confidence %g, want default 0.9", v.TargetConfidence)
	}
	for _, j := range v.Jurors {
		if j.State != JurorInvited {
			t.Fatalf("juror %q state %q", j.ID, j.State)
		}
	}
	if st := s.Stats(); st.Open != 1 || st.Tasks != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCreateValidation(t *testing.T) {
	s, _ := newTestStore(t, 10)
	cases := []Spec{
		{},              // no pool
		{Pool: "ghost"}, // unknown pool
		{Pool: "crowd", Strategy: "bogus"},
		{Pool: "crowd", Strategy: StrategyAltr, Budget: 1}, // budget without pay
		{Pool: "crowd", TargetConfidence: 0.4},
		{Pool: "crowd", TargetConfidence: 1.2},
		{Pool: "crowd", MaxInvites: -1},
	}
	for i, spec := range cases {
		if _, err := s.Create(context.Background(), spec); err == nil {
			t.Errorf("case %d accepted: %+v", i, spec)
		}
	}
	if st := s.Stats(); st.Tasks != 0 {
		t.Fatalf("rejected creates left %d tasks", st.Tasks)
	}
}

// TestSequentialEarlyStop is the tentpole behaviour: unanimous votes from
// reliable jurors cross the posterior target before the jury is
// exhausted, closing the task with fewer votes than the fixed jury
// would spend.
func TestSequentialEarlyStop(t *testing.T) {
	s, _ := newTestStore(t, 30)
	v, err := s.Create(context.Background(), Spec{Pool: "crowd", TargetConfidence: 0.95})
	if err != nil {
		t.Fatal(err)
	}
	jurySize := len(v.Jurors)
	var last View
	votes := 0
	for _, j := range v.Jurors {
		last, err = s.Vote(context.Background(), v.ID, j.ID, true)
		if err != nil {
			t.Fatal(err)
		}
		votes++
		if last.Status == StatusDecided {
			break
		}
	}
	if last.Status != StatusDecided {
		t.Fatalf("unanimous jury never decided: %+v", last.Verdict)
	}
	if votes >= jurySize {
		t.Fatalf("spent all %d votes: early stop never fired", jurySize)
	}
	if last.Verdict == nil || !last.Verdict.Answer || !last.Verdict.EarlyStopped {
		t.Fatalf("verdict = %+v, want early-stopped yes", last.Verdict)
	}
	if last.Verdict.Confidence < 0.95 {
		t.Fatalf("confidence %g below target", last.Verdict.Confidence)
	}
	if last.VotesSpent != votes {
		t.Fatalf("votes spent %d, want %d", last.VotesSpent, votes)
	}
	// Further votes are rejected: the task is closed.
	if _, err := s.Vote(context.Background(), v.ID, v.Jurors[jurySize-1].ID, true); !errors.Is(err, ErrTaskClosed) {
		t.Fatalf("vote on closed task = %v", err)
	}
	if st := s.Stats(); st.Decided != 1 || st.Open != 0 || st.AwaitingVotes != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestFixedJuryTargetOneCollectsAllVotes: target 1 disables early stop —
// the fixed-jury baseline the EXPERIMENTS table compares against.
func TestFixedJuryTargetOneCollectsAllVotes(t *testing.T) {
	s, _ := newTestStore(t, 30)
	v, err := s.Create(context.Background(), Spec{Pool: "crowd", TargetConfidence: 1})
	if err != nil {
		t.Fatal(err)
	}
	var last View
	for _, j := range v.Jurors {
		last, err = s.Vote(context.Background(), v.ID, j.ID, true)
		if err != nil {
			t.Fatal(err)
		}
	}
	if last.Status != StatusDecided {
		t.Fatalf("status %q after all votes", last.Status)
	}
	if last.Verdict.EarlyStopped {
		t.Fatal("target 1 still early-stopped")
	}
	if last.VotesSpent != len(v.Jurors) {
		t.Fatalf("votes spent %d, want the whole jury %d", last.VotesSpent, len(v.Jurors))
	}
}

func TestVoteValidation(t *testing.T) {
	s, _ := newTestStore(t, 20)
	v, err := s.Create(context.Background(), Spec{Pool: "crowd"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Vote(context.Background(), "ghost", v.Jurors[0].ID, true); !errors.Is(err, ErrTaskNotFound) {
		t.Errorf("unknown task = %v", err)
	}
	if _, err := s.Vote(context.Background(), v.ID, "stranger", true); !errors.Is(err, ErrNotInvited) {
		t.Errorf("uninvited juror = %v", err)
	}
	if _, err := s.Vote(context.Background(), v.ID, v.Jurors[0].ID, true); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Vote(context.Background(), v.ID, v.Jurors[0].ID, false); !errors.Is(err, ErrAlreadyVoted) {
		t.Errorf("double vote = %v", err)
	}
	if _, err := s.Decline(context.Background(), v.ID, v.Jurors[1].ID); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Vote(context.Background(), v.ID, v.Jurors[1].ID, true); !errors.Is(err, ErrJurorReleased) {
		t.Errorf("vote after decline = %v", err)
	}
}

// TestDeclineInvitesNextBestReplacement: a released juror is replaced by
// the best not-yet-invited candidate from the creation snapshot.
func TestDeclineInvitesNextBestReplacement(t *testing.T) {
	s, _ := newTestStore(t, 20)
	v, err := s.Create(context.Background(), Spec{Pool: "crowd"})
	if err != nil {
		t.Fatal(err)
	}
	invited := make(map[string]bool)
	var worstRate float64
	for _, j := range v.Jurors {
		invited[j.ID] = true
		if j.ErrorRate > worstRate {
			worstRate = j.ErrorRate
		}
	}
	after, err := s.Decline(context.Background(), v.ID, v.Jurors[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Jurors) != len(v.Jurors)+1 {
		t.Fatalf("no replacement invited: %d jurors", len(after.Jurors))
	}
	repl := after.Jurors[len(after.Jurors)-1]
	if invited[repl.ID] {
		t.Fatalf("replacement %q was already invited", repl.ID)
	}
	if repl.State != JurorInvited {
		t.Fatalf("replacement state %q", repl.State)
	}
	// The altruistic jury is the ε-sorted prefix, so the next-best
	// candidate is the first one worse than the original jury.
	if repl.ErrorRate < worstRate {
		t.Fatalf("replacement ε %g better than an originally selected juror", repl.ErrorRate)
	}
	if after.Declines != 1 {
		t.Fatalf("declines = %d", after.Declines)
	}
}

// TestReplacementRespectsBudget: under the pay strategy a replacement
// must fit the budget freed by the release.
func TestReplacementRespectsBudget(t *testing.T) {
	clk := newFakeClock()
	s, err := Open(Config{Now: clk.now})
	if err != nil {
		t.Fatal(err)
	}
	// Cheap unreliable crowd plus one excellent but unaffordable juror.
	jurors := []jury.Juror{
		{ID: "cheap1", ErrorRate: 0.30, Cost: 0.1},
		{ID: "cheap2", ErrorRate: 0.32, Cost: 0.1},
		{ID: "cheap3", ErrorRate: 0.34, Cost: 0.1},
		{ID: "cheap4", ErrorRate: 0.36, Cost: 0.1},
		{ID: "gold", ErrorRate: 0.01, Cost: 5.0},
	}
	if _, err := s.PutPool("crowd", jurors); err != nil {
		t.Fatal(err)
	}
	v, err := s.Create(context.Background(), Spec{Pool: "crowd", Strategy: StrategyPay, Budget: 0.35})
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range v.Jurors {
		if j.ID == "gold" {
			t.Fatal("budget 0.35 admitted the 5.0-cost juror at selection")
		}
	}
	after, err := s.Decline(context.Background(), v.ID, v.Jurors[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range after.Jurors {
		if j.ID == "gold" && j.State == JurorInvited {
			t.Fatal("replacement ignored the remaining budget")
		}
	}
}

// TestJuryExhaustedDecidesOrExpires: when every juror has answered or
// been released (and no replacement fits), the task closes — with the
// MAP verdict if the evidence leans, undecided-expired on a dead tie.
func TestJuryExhaustedDecidesOrExpires(t *testing.T) {
	clk := newFakeClock()
	s, err := Open(Config{Now: clk.now})
	if err != nil {
		t.Fatal(err)
	}
	// Exactly three jurors, no replacements possible beyond the pool.
	if _, err := s.PutPool("trio", []jury.Juror{
		{ID: "a", ErrorRate: 0.2}, {ID: "b", ErrorRate: 0.2}, {ID: "c", ErrorRate: 0.3},
	}); err != nil {
		t.Fatal(err)
	}
	// Split 2-1 with a high target: no early stop, but decisive evidence.
	v, err := s.Create(context.Background(), Spec{Pool: "trio", TargetConfidence: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.Vote(context.Background(), v.ID, "a", true)  //nolint:errcheck
	s.Vote(context.Background(), v.ID, "b", false) //nolint:errcheck
	last, err := s.Vote(context.Background(), v.ID, "c", false)
	if err != nil {
		t.Fatal(err)
	}
	if last.Status != StatusDecided || last.Verdict == nil || last.Verdict.Answer != false {
		t.Fatalf("split vote: %+v", last)
	}

	// Dead tie: equal reliabilities cancel; the jury is exhausted via a
	// decline with no replacements left, and the task expires undecided.
	v2, err := s.Create(context.Background(), Spec{Pool: "trio", TargetConfidence: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.Vote(context.Background(), v2.ID, "a", true)  //nolint:errcheck
	s.Vote(context.Background(), v2.ID, "b", false) //nolint:errcheck
	last2, err := s.Decline(context.Background(), v2.ID, "c")
	if err != nil {
		t.Fatal(err)
	}
	if last2.Status != StatusExpired || last2.Verdict != nil {
		t.Fatalf("tied exhausted task: %+v", last2)
	}
	if st := s.Stats(); st.Expired != 1 || st.Decided != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestSweepTimesOutJurorsAndExpiresTasks exercises the wall-clock
// policy with a fake clock.
func TestSweepTimesOutJurorsAndExpiresTasks(t *testing.T) {
	clk := newFakeClock()
	s, err := Open(Config{Now: clk.now, DefaultJurorTimeout: time.Minute, DefaultExpiry: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.PutPool("crowd", crowdJurors(20)); err != nil {
		t.Fatal(err)
	}
	v, err := s.Create(context.Background(), Spec{Pool: "crowd"})
	if err != nil {
		t.Fatal(err)
	}
	// Before the timeout nothing happens.
	released, expired, err := s.Sweep(clk.advance(30 * time.Second))
	if err != nil || released != 0 || expired != 0 {
		t.Fatalf("early sweep: %d released %d expired err %v", released, expired, err)
	}
	// Past the juror timeout every silent invitee is released; their
	// replacements were just invited so they survive this sweep.
	released, _, err = s.Sweep(clk.advance(45 * time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if released != len(v.Jurors) {
		t.Fatalf("released %d, want the whole silent jury %d", released, len(v.Jurors))
	}
	after, err := s.Get(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	timedOut := 0
	for _, j := range after.Jurors {
		if j.State == JurorTimedOut {
			timedOut++
		}
	}
	if timedOut != len(v.Jurors) {
		t.Fatalf("timed out %d, want %d", timedOut, len(v.Jurors))
	}
	if after.Status.closed() {
		t.Fatalf("task closed while replacements pending: %q", after.Status)
	}
	// Past the task expiry the whole task closes without a verdict.
	_, expired, err = s.Sweep(clk.advance(2 * time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if expired != 1 {
		t.Fatalf("expired %d tasks, want 1", expired)
	}
	final, _ := s.Get(v.ID)
	if final.Status != StatusExpired || final.Verdict != nil {
		t.Fatalf("expired task: %+v", final)
	}
}

func TestListFiltersByStatus(t *testing.T) {
	s, _ := newTestStore(t, 20)
	a, _ := s.Create(context.Background(), Spec{Pool: "crowd"})
	b, _ := s.Create(context.Background(), Spec{Pool: "crowd"})
	for _, j := range b.Jurors {
		v, err := s.Vote(context.Background(), b.ID, j.ID, true)
		if err != nil {
			t.Fatal(err)
		}
		if v.Status.closed() {
			break
		}
	}
	all := s.List("")
	if len(all) != 2 || all[0].ID != a.ID || all[1].ID != b.ID {
		t.Fatalf("list = %+v", all)
	}
	open := s.List(StatusOpen)
	if len(open) != 1 || open[0].ID != a.ID {
		t.Fatalf("open list = %+v", open)
	}
	decided := s.List(StatusDecided)
	if len(decided) != 1 || decided[0].ID != b.ID {
		t.Fatalf("decided list = %+v", decided)
	}
}

func TestPoolMutationsFlowThroughStore(t *testing.T) {
	s, _ := newTestStore(t, 5)
	if _, err := s.PatchPool("crowd", []pool.JurorUpdate{
		{ID: "j000", Votes: &pool.VoteObservation{Wrong: 1, Total: 3}},
	}); err != nil {
		t.Fatal(err)
	}
	p, ok := s.Pools().Get("crowd")
	if !ok || p.Version != 2 {
		t.Fatalf("patched pool version = %v", p)
	}
	existed, err := s.DeletePool("crowd")
	if err != nil || !existed {
		t.Fatalf("delete = %v %v", existed, err)
	}
	if existed, _ := s.DeletePool("crowd"); existed {
		t.Fatal("double delete reported success")
	}
}
