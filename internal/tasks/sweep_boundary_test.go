package tasks

import (
	"bytes"
	"context"
	"testing"
	"time"

	"juryselect/jury"
)

// The sweep's wall-clock comparisons are inclusive: a juror is released
// and a task expires at the exact deadline instant, not one tick after.
// These tests pin that boundary, the interaction between a timeout
// cascade and task closure inside a single sweep, and the precedence
// rule when both deadlines land on the same instant — including that
// WAL replay reproduces the tie-broken state byte-for-byte.

func TestSweepReleasesJurorExactlyAtTimeout(t *testing.T) {
	s, clk := newTestStore(t, 30)
	v, err := s.Create(context.Background(), Spec{Pool: "crowd", JurorTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	jurySize := len(v.Jurors)

	// One nanosecond before the deadline nothing moves.
	released, expired, err := s.Sweep(clk.advance(time.Minute - time.Nanosecond))
	if err != nil {
		t.Fatal(err)
	}
	if released != 0 || expired != 0 {
		t.Fatalf("sweep at timeout-1ns released %d, expired %d; want 0, 0", released, expired)
	}

	// At the exact instant every invited juror is overdue (inclusive
	// boundary) and each release invites a replacement while candidates
	// last (the 30-juror pool has 30-jurySize uninvited left).
	at := clk.advance(time.Nanosecond)
	released, expired, err = s.Sweep(at)
	if err != nil {
		t.Fatal(err)
	}
	if released != jurySize || expired != 0 {
		t.Fatalf("sweep at exact timeout released %d, expired %d; want %d, 0", released, expired, jurySize)
	}
	after, err := s.Get(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	timedOut, replaced := 0, 0
	for _, j := range after.Jurors {
		switch j.State {
		case JurorTimedOut:
			timedOut++
		case JurorInvited:
			if !j.InvitedAt.Equal(at) {
				t.Fatalf("replacement %q invited at %v, want sweep instant %v", j.ID, j.InvitedAt, at)
			}
			replaced++
		}
	}
	wantReplaced := min(jurySize, 30-jurySize)
	if timedOut != jurySize || replaced != wantReplaced {
		t.Fatalf("timed out %d, replaced %d; want %d, %d", timedOut, replaced, jurySize, wantReplaced)
	}
}

func TestSweepExpiresTaskExactlyAtDeadline(t *testing.T) {
	s, clk := newTestStore(t, 30)
	v, err := s.Create(context.Background(), Spec{Pool: "crowd", ExpiresIn: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Sweep(clk.advance(time.Hour - time.Nanosecond)); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Get(v.ID); got.Status.closed() {
		t.Fatalf("task closed one tick before expiry: %v", got.Status)
	}
	_, expired, err := s.Sweep(clk.advance(time.Nanosecond))
	if err != nil {
		t.Fatal(err)
	}
	if expired != 1 {
		t.Fatalf("sweep at exact expiry expired %d tasks, want 1", expired)
	}
	got, err := s.Get(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != StatusExpired || got.Verdict != nil {
		t.Fatalf("status %v verdict %+v, want expired undecided", got.Status, got.Verdict)
	}
}

// TestSweepTimeoutCascadeClosesTaskInSameSweep drives the jury of a
// replacement-starved task (the jury IS the whole candidate set) past
// the timeout: the final release of the sweep finds no replacement and
// zero pending jurors, so the same sweep that times the jurors out also
// closes the task — without a recExpire record.
func TestSweepTimeoutCascadeClosesTaskInSameSweep(t *testing.T) {
	s, clk := newTestStore(t, 3)
	// Three equally strong jurors: the 3-jury majority JER (~0.028)
	// beats any single juror (0.1), so selection invites the whole pool
	// and releases can never find a replacement.
	if _, err := s.PutPool("trio", []jury.Juror{
		{ID: "a", ErrorRate: 0.1, Cost: 1}, {ID: "b", ErrorRate: 0.1, Cost: 1},
		{ID: "c", ErrorRate: 0.1, Cost: 1},
	}); err != nil {
		t.Fatal(err)
	}
	v, err := s.Create(context.Background(), Spec{Pool: "trio", JurorTimeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Jurors) != 3 {
		t.Fatalf("jury of %d from a 3-juror pool, want all 3", len(v.Jurors))
	}
	released, expired, err := s.Sweep(clk.advance(30 * time.Second))
	if err != nil {
		t.Fatal(err)
	}
	// The closure happens inside applyDecline's closeCheck, so the
	// sweep's own expiry counter stays zero.
	if released != 3 || expired != 0 {
		t.Fatalf("released %d, expired %d; want 3, 0", released, expired)
	}
	got, err := s.Get(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != StatusExpired {
		t.Fatalf("status %v, want expired (jury exhausted with no votes)", got.Status)
	}
	for _, j := range got.Jurors {
		if j.State != JurorTimedOut {
			t.Fatalf("juror %q state %v, want timed out", j.ID, j.State)
		}
	}
}

// TestSweepExpiryWinsTimeoutTie pins the precedence rule: when the task
// expiry and the juror timeout land on the same instant, the sweep
// expires the task and does NOT release jurors — their states stay
// JurorInvited under an expired task, and WAL replay reproduces that
// exact state byte-for-byte.
func TestSweepExpiryWinsTimeoutTie(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	s, err := Open(Config{Dir: dir, Sync: SyncAlways, Now: clk.now})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.PutPool("crowd", crowdJurors(20)); err != nil {
		t.Fatal(err)
	}
	v, err := s.Create(context.Background(), Spec{Pool: "crowd",
		JurorTimeout: 10 * time.Second, ExpiresIn: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	released, expired, err := s.Sweep(clk.advance(10 * time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if released != 0 || expired != 1 {
		t.Fatalf("tie sweep released %d, expired %d; want 0, 1 (expiry wins)", released, expired)
	}
	got, err := s.Get(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != StatusExpired {
		t.Fatalf("status %v, want expired", got.Status)
	}
	for _, j := range got.Jurors {
		if j.State != JurorInvited {
			t.Fatalf("juror %q state %v, want still invited (expiry preempts release)", j.ID, j.State)
		}
	}

	before := storeFingerprint(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(Config{Dir: dir, Sync: SyncAlways, Now: clk.now})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if after := storeFingerprint(t, s2); !bytes.Equal(before, after) {
		t.Fatalf("replay diverged on the tie:\nbefore: %s\nafter:  %s", before, after)
	}
}

func TestSweepProgressCounters(t *testing.T) {
	s, clk := newTestStore(t, 30)
	if p := s.SweepProgress(); p.Sweeps != 0 || !p.LastSweepAt.IsZero() {
		t.Fatalf("fresh store progress = %+v", p)
	}
	v, err := s.Create(context.Background(), Spec{Pool: "crowd",
		JurorTimeout: time.Minute, ExpiresIn: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	jurySize := len(v.Jurors)
	at := clk.advance(time.Minute)
	if _, _, err := s.Sweep(at); err != nil {
		t.Fatal(err)
	}
	p := s.SweepProgress()
	if p.Sweeps != 1 || !p.LastSweepAt.Equal(at) {
		t.Fatalf("progress after first sweep = %+v", p)
	}
	if p.Released != int64(jurySize) || p.Expired != 0 {
		t.Fatalf("released %d, expired %d; want %d, 0", p.Released, p.Expired, jurySize)
	}
	at = clk.advance(time.Hour)
	if _, _, err := s.Sweep(at); err != nil {
		t.Fatal(err)
	}
	p = s.SweepProgress()
	if p.Sweeps != 2 || p.Expired != 1 || !p.LastSweepAt.Equal(at) {
		t.Fatalf("progress after expiry sweep = %+v", p)
	}
}

func TestStalledInvites(t *testing.T) {
	s, clk := newTestStore(t, 30)
	if _, err := s.Create(context.Background(), Spec{Pool: "crowd", JurorTimeout: time.Minute}); err != nil {
		t.Fatal(err)
	}
	grace := 30 * time.Second

	// Within timeout+grace nothing is stalled — an overdue juror inside
	// the grace window is the sweeper's normal cadence, not a stall.
	if n, _ := s.StalledInvites(clk.advance(time.Minute+grace-time.Nanosecond), grace); n != 0 {
		t.Fatalf("stalled tasks inside grace = %d, want 0", n)
	}
	now := clk.advance(10 * time.Second)
	n, oldest := s.StalledInvites(now, grace)
	if n != 1 {
		t.Fatalf("stalled tasks past grace = %d, want 1", n)
	}
	if want := 10*time.Second - time.Nanosecond; oldest != want {
		t.Fatalf("oldest overdue = %v, want %v", oldest, want)
	}

	// A sweep releases the overdue jurors; the replacements restart the
	// timeout clock and the stall clears.
	if _, _, err := s.Sweep(now); err != nil {
		t.Fatal(err)
	}
	if n, _ := s.StalledInvites(now, grace); n != 0 {
		t.Fatalf("stalled tasks after sweep = %d, want 0", n)
	}
}
