package tasks

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"juryselect/internal/estimate"
	"juryselect/jury"
)

// Status is a task's lifecycle state.
type Status string

const (
	// StatusOpen: jury invited, no votes yet.
	StatusOpen Status = "open"
	// StatusAwaitingVotes: at least one vote in, verdict not yet reached.
	StatusAwaitingVotes Status = "awaiting_votes"
	// StatusDecided: a verdict was emitted (early stop, or all votes in
	// with decisive evidence).
	StatusDecided Status = "decided"
	// StatusExpired: the task closed without a verdict — deadline passed,
	// or the jury was exhausted with perfectly balanced (or no) evidence.
	StatusExpired Status = "expired"
)

// closed reports whether the status is terminal.
func (s Status) closed() bool { return s == StatusDecided || s == StatusExpired }

// JurorState is one invited juror's standing within a task.
type JurorState string

const (
	// JurorInvited: asked, no answer yet.
	JurorInvited JurorState = "invited"
	// JurorVoted: answered.
	JurorVoted JurorState = "voted"
	// JurorDeclined: explicitly refused; released from the task.
	JurorDeclined JurorState = "declined"
	// JurorTimedOut: never answered within the juror timeout; released.
	JurorTimedOut JurorState = "timed_out"
)

// Strategy names accepted by Spec.Strategy.
const (
	StrategyAltr = "altr"
	StrategyPay  = "pay"
)

// Lifecycle errors surfaced on the task endpoints.
var (
	// ErrInvalidSpec reports a task spec that failed validation; the
	// serving layer maps it to 400.
	ErrInvalidSpec = errors.New("tasks: invalid spec")
	// ErrTaskNotFound reports a request against an unknown task ID.
	ErrTaskNotFound = errors.New("tasks: task not found")
	// ErrTaskClosed reports a vote or decline on a decided/expired task.
	ErrTaskClosed = errors.New("tasks: task already closed")
	// ErrNotInvited reports a vote by a juror the task never invited.
	ErrNotInvited = errors.New("tasks: juror not invited")
	// ErrAlreadyVoted reports a second vote by the same juror.
	ErrAlreadyVoted = errors.New("tasks: juror already voted")
	// ErrJurorReleased reports a vote by a juror already released
	// (declined or timed out) from the task.
	ErrJurorReleased = errors.New("tasks: juror released from task")
)

// Spec is a decision task's immutable request parameters. The zero value
// of every optional field selects the store default; normalizeSpec is
// applied — and the normalized spec journaled — at creation, so replay
// never depends on defaults changing across versions.
type Spec struct {
	// Pool names the juror pool to select from.
	Pool string `json:"pool"`
	// Question is the task's free-text payload (opaque to the store).
	Question string `json:"question,omitempty"`
	// Strategy is "altr" (default) or "pay".
	Strategy string `json:"strategy,omitempty"`
	// Budget is the pay model's budget B (pay strategy only). It also
	// caps replacements: an invited jury never exceeds it.
	Budget float64 `json:"budget,omitempty"`
	// TargetConfidence is the posterior confidence that closes the task
	// early, in (0.5, 1]. Exactly 1 disables early stop: the task
	// collects every invited vote (the fixed-jury baseline).
	TargetConfidence float64 `json:"target_confidence,omitempty"`
	// MaxInvites caps total invitations including the initial jury
	// (bounding replacement churn). Zero selects 2× the initial jury.
	MaxInvites int `json:"max_invites,omitempty"`
	// JurorTimeout releases an invited juror who has not answered.
	JurorTimeout time.Duration `json:"juror_timeout,omitempty"`
	// ExpiresIn closes the whole task without a verdict.
	ExpiresIn time.Duration `json:"expires_in,omitempty"`
}

// TaskJuror is one invited juror within a task.
type TaskJuror struct {
	ID string
	// ErrorRate and Cost are the juror's estimate and payment
	// requirement at invitation time (the pool may drift afterwards; the
	// task's posterior arithmetic stays pinned to what selection saw).
	ErrorRate float64
	Cost      float64
	State     JurorState
	// Vote is set once State is JurorVoted.
	Vote      *bool
	InvitedAt time.Time
}

// Verdict is a decided task's outcome.
type Verdict struct {
	Answer     bool
	Confidence float64
	// EarlyStopped reports that the posterior crossed the target before
	// every invited juror had answered — the votes the sequential policy
	// did not spend.
	EarlyStopped bool
	DecidedAt    time.Time
}

// task is the store's internal task state. Mutable fields are guarded
// by the owning shard's mutex; id, spec, createdAt, expiresAt,
// poolVersion, predictedJER and candidates are immutable after creation
// and safe to read lock-free. snap is the published copy-on-write view:
// every mutation renders a fresh View and stores it, so Get, List and
// the sweeper's scan never take the shard lock.
type task struct {
	id           string
	spec         Spec
	status       Status
	poolVersion  uint64
	predictedJER float64
	createdAt    time.Time
	expiresAt    time.Time
	jurors       []TaskJuror
	index        map[string]int // juror ID → jurors index
	post         estimate.VerdictPosterior
	verdict      *Verdict
	declines     int
	// candidates is the ε-sorted creation-snapshot view replacements are
	// drawn from (immutable, shared with the pool snapshot).
	candidates []jury.Juror

	// snap is the lock-free published view; views are immutable once
	// stored (each publication renders fresh slices).
	snap atomic.Pointer[View]
}

// pending counts invited jurors who have not yet answered or been
// released.
func (t *task) pending() int {
	n := 0
	for _, j := range t.jurors {
		if j.State == JurorInvited {
			n++
		}
	}
	return n
}

// committedCost sums the cost of jurors still on the task (invited or
// voted): the budget replacements must fit under.
func (t *task) committedCost() float64 {
	c := 0.0
	for _, j := range t.jurors {
		if j.State == JurorInvited || j.State == JurorVoted {
			c += j.Cost
		}
	}
	return c
}

// normalizeSpec fills spec defaults from the store configuration and
// validates the result.
func (s *Store) normalizeSpec(spec Spec) (Spec, error) {
	if spec.Pool == "" {
		return spec, fmt.Errorf("%w: spec must name a pool", ErrInvalidSpec)
	}
	if spec.Strategy == "" {
		spec.Strategy = StrategyAltr
	}
	switch spec.Strategy {
	case StrategyAltr:
		if spec.Budget != 0 {
			return spec, fmt.Errorf("%w: budget applies only to strategy %q", ErrInvalidSpec, StrategyPay)
		}
	case StrategyPay:
		if spec.Budget < 0 || math.IsNaN(spec.Budget) {
			return spec, fmt.Errorf("%w: budget %g must be non-negative", ErrInvalidSpec, spec.Budget)
		}
	default:
		return spec, fmt.Errorf("%w: unknown strategy %q (want %s or %s)", ErrInvalidSpec, spec.Strategy, StrategyAltr, StrategyPay)
	}
	if spec.TargetConfidence == 0 {
		spec.TargetConfidence = s.defaultTarget
	}
	if math.IsNaN(spec.TargetConfidence) || spec.TargetConfidence <= 0.5 || spec.TargetConfidence > 1 {
		return spec, fmt.Errorf("%w: target_confidence %g outside (0.5, 1]", ErrInvalidSpec, spec.TargetConfidence)
	}
	if spec.MaxInvites < 0 {
		return spec, fmt.Errorf("%w: max_invites %d must be non-negative", ErrInvalidSpec, spec.MaxInvites)
	}
	if spec.JurorTimeout == 0 {
		spec.JurorTimeout = s.defaultJurorTimeout
	}
	if spec.JurorTimeout < 0 {
		return spec, fmt.Errorf("%w: juror_timeout must be positive", ErrInvalidSpec)
	}
	if spec.ExpiresIn == 0 {
		spec.ExpiresIn = s.defaultExpiry
	}
	if spec.ExpiresIn < 0 {
		return spec, fmt.Errorf("%w: expires_in must be positive", ErrInvalidSpec)
	}
	return spec, nil
}

// JurorView is the wire/snapshot form of one invited juror.
type JurorView struct {
	ID        string     `json:"id"`
	ErrorRate float64    `json:"error_rate"`
	Cost      float64    `json:"cost,omitempty"`
	State     JurorState `json:"state"`
	Vote      *bool      `json:"vote,omitempty"`
	InvitedAt time.Time  `json:"invited_at"`
}

// VerdictView is the wire/snapshot form of a verdict.
type VerdictView struct {
	Answer       bool      `json:"answer"`
	Confidence   float64   `json:"confidence"`
	EarlyStopped bool      `json:"early_stopped,omitempty"`
	DecidedAt    time.Time `json:"decided_at"`
}

// View is the complete externally visible state of a task: the shape the
// HTTP API serves and the crash-recovery tests compare byte for byte.
type View struct {
	ID               string       `json:"id"`
	Status           Status       `json:"status"`
	Pool             string       `json:"pool"`
	PoolVersion      uint64       `json:"pool_version"`
	Question         string       `json:"question,omitempty"`
	Strategy         string       `json:"strategy"`
	Budget           float64      `json:"budget,omitempty"`
	TargetConfidence float64      `json:"target_confidence"`
	PredictedJER     float64      `json:"predicted_jer"`
	CreatedAt        time.Time    `json:"created_at"`
	ExpiresAt        time.Time    `json:"expires_at"`
	Jurors           []JurorView  `json:"jurors"`
	Invites          int          `json:"invites"`
	VotesSpent       int          `json:"votes_spent"`
	Declines         int          `json:"declines,omitempty"`
	PYes             float64      `json:"p_yes"`
	Verdict          *VerdictView `json:"verdict,omitempty"`
}

// view renders the task's external state. Callers hold the task's shard
// mutex (or are single-threaded, during recovery).
func (t *task) view() View {
	v := View{
		ID:               t.id,
		Status:           t.status,
		Pool:             t.spec.Pool,
		PoolVersion:      t.poolVersion,
		Question:         t.spec.Question,
		Strategy:         t.spec.Strategy,
		Budget:           t.spec.Budget,
		TargetConfidence: t.spec.TargetConfidence,
		PredictedJER:     t.predictedJER,
		CreatedAt:        t.createdAt,
		ExpiresAt:        t.expiresAt,
		Jurors:           make([]JurorView, len(t.jurors)),
		Invites:          len(t.jurors),
		VotesSpent:       t.post.Votes(),
		Declines:         t.declines,
		PYes:             t.post.PYes(),
	}
	for i, j := range t.jurors {
		v.Jurors[i] = JurorView{
			ID:        j.ID,
			ErrorRate: j.ErrorRate,
			Cost:      j.Cost,
			State:     j.State,
			Vote:      j.Vote,
			InvitedAt: j.InvitedAt,
		}
	}
	if t.verdict != nil {
		v.Verdict = &VerdictView{
			Answer:       t.verdict.Answer,
			Confidence:   t.verdict.Confidence,
			EarlyStopped: t.verdict.EarlyStopped,
			DecidedAt:    t.verdict.DecidedAt,
		}
	}
	return v
}
