// Package tasks is the durable decision-task lifecycle subsystem behind
// juryd: the paper's object of study — a question posed to a selected
// jury whose votes yield a verdict — as a stateful, crash-safe service
// component.
//
// A task is created with a question, a selection strategy and budget,
// and a target confidence. The store selects a jury from the live pool
// snapshot (recording the pool version), collects votes as they arrive,
// and folds each one into an exact posterior over the answer
// (estimate.VerdictPosterior). Two mechanisms take the paper's
// pay-as-you-go framing online:
//
//   - Sequential early stop: the task closes and emits a verdict the
//     moment posterior confidence crosses the target, spending fewer
//     votes than the fixed jury would.
//   - Juror timeout/replacement: a selected juror who never answers
//     (the common case on real micro-blog services, cf. Mahmud et al.,
//     arXiv:1404.2013) is released and the next-best candidate under
//     the remaining budget is invited.
//
// Durability: every task and pool mutation is journaled to an
// append-only write-ahead log with CRC-framed records and group-commit
// fsync batching before it is applied, and the full state is
// periodically folded into a snapshot so the log stays short
// (Compact). A restarted process replays snapshot + log to the exact
// pre-crash state; a torn tail (partial final record from a crash
// mid-write) is detected by the CRC frame and truncated.
package tasks

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"juryselect/internal/obs"
)

// SyncMode selects the WAL's durability discipline.
type SyncMode string

const (
	// SyncAlways fsyncs before every append returns: an acknowledged
	// write survives any crash. Appends still group-commit — concurrent
	// writers share one fsync.
	SyncAlways SyncMode = "always"
	// SyncBatch (the default) fsyncs on a short timer: acknowledged
	// writes survive a process crash immediately (they are in the
	// kernel), and survive a machine crash once the batch window — at
	// most BatchInterval — has passed. One fsync amortizes over every
	// append in the window.
	SyncBatch SyncMode = "batch"
	// SyncOff never fsyncs (the OS flushes when it pleases). For tests,
	// benchmarks and ephemeral stores.
	SyncOff SyncMode = "off"
)

// DefaultBatchInterval is the SyncBatch group-commit window.
const DefaultBatchInterval = 2 * time.Millisecond

// maxRecordLen bounds a single WAL record; a frame declaring more is
// treated as a torn/corrupt tail. Generous: the largest legitimate
// record is a full-pool put.
const maxRecordLen = 64 << 20

// walFrameOverhead is the per-record framing cost: u32 payload length +
// u32 CRC-32C of the payload, both little-endian.
const walFrameOverhead = 8

// crcTable is the Castagnoli polynomial, hardware-accelerated on
// amd64/arm64.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrWALClosed reports an append on a closed WAL.
var ErrWALClosed = errors.New("tasks: wal closed")

// ErrRecordTooLarge reports an append whose payload exceeds the frame
// bound. Rejecting it at write time matters: a larger record would be
// written (and acknowledged) successfully but rejected as a torn tail
// on replay, silently truncating it and everything after it.
var ErrRecordTooLarge = errors.New("tasks: wal record exceeds frame bound")

// WALOptions configures OpenWAL. The zero value selects the pipelined
// SyncBatch committer with the default idle window.
type WALOptions struct {
	Sync          SyncMode
	BatchInterval time.Duration
	// TimerCommit restores the pre-pipeline committer: fsync only when
	// the BatchInterval timer fires, so every durability wait pays up to
	// a full window. Kept for baseline benchmarking; the default (false)
	// is the two-phase pipeline, which fsyncs back-to-back whenever
	// records are pending — batch N+1 accumulates while batch N syncs —
	// bounding the wait by one fsync instead of the timer.
	TimerCommit bool
	// FsyncObserver, when set, is called with every fsync's latency in
	// nanoseconds, from the committer goroutine outside the WAL lock. It
	// feeds the SLO engine's wal_fsync objective; implementations must be
	// cheap and must not call back into the WAL.
	FsyncObserver func(latencyNS int64)
}

// walBatchBuckets is the fsync batch-size histogram shape: bucket i
// counts fsyncs that acknowledged ≤ 2^i records (the last is open).
const walBatchBuckets = 8

// WALStats is a snapshot of the log's counters.
type WALStats struct {
	// Appends counts records appended since open (excluding replay).
	Appends int64
	// Fsyncs counts fsync calls issued.
	Fsyncs int64
	// FsyncP99NS is the 99th-percentile fsync latency since open, in
	// nanoseconds (0 until the first fsync). Derived from FsyncHist.
	FsyncP99NS int64
	// FsyncHist is the full fsync-latency histogram since open.
	FsyncHist obs.HistSnapshot
	// DurableWaitHist is the append→durable wait distribution: what a
	// writer actually pays in WaitDurable, fast (already-synced) paths
	// included. Empty under SyncOff, which has no durability wait.
	DurableWaitHist obs.HistSnapshot
	// QueueDepth is the number of appended records not yet durable —
	// the committer's backlog at the instant of the snapshot.
	QueueDepth int64
	// FsyncBatchSizes is a histogram of records acknowledged per fsync:
	// bucket i counts fsyncs whose batch was ≤ 2^i records (1, 2, 4, …,
	// 64), with the final bucket open-ended. A healthy pipelined
	// committer under load fills the higher buckets.
	FsyncBatchSizes [walBatchBuckets]int64
	// ReplayRecords is the number of intact records replayed at open.
	ReplayRecords int64
	// TornBytes is the size of the torn tail truncated at open (0 for a
	// clean log).
	TornBytes int64
}

// WAL is a CRC-framed append-only log with group-commit fsync batching.
// Append is safe for concurrent use; records are durable per the
// configured SyncMode when Append returns. The frame layout is
//
//	record  := len:u32le  crc:u32le  payload:[len]byte
//	crc      = CRC-32C(payload)
//
// A reader accepts the longest prefix of intact frames and truncates
// the rest: a crash mid-write loses at most the unacknowledged tail.
type WAL struct {
	mu      sync.Mutex
	f       *os.File
	w       *bufio.Writer
	hdr     [walFrameOverhead]byte
	written uint64 // records buffered (monotonic)
	synced  uint64 // records durable
	err     error  // sticky write/sync error
	closed  bool
	durable *sync.Cond // broadcast when synced advances

	mode      SyncMode
	interval  time.Duration
	timerOnly bool
	syncReq   chan struct{}
	done      chan struct{}
	loopDone  chan struct{}

	appends   atomic.Int64
	fsyncs    atomic.Int64
	batchHist [walBatchBuckets]atomic.Int64
	replayed  int64
	torn      int64

	fsyncLat obs.Histogram // fsync call latency
	waitLat  obs.Histogram // append→durable wait as seen by writers
	fsyncObs func(latencyNS int64)
}

// walRecord is one intact record yielded by readWAL.
type walRecord struct {
	payload []byte
}

// readWAL reads every intact frame of the file at path and returns the
// records plus the byte offset where intact data ends (the truncation
// point for a torn tail). A missing file yields zero records.
func readWAL(path string) (records []walRecord, validLen int64, err error) {
	raw, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, err
	}
	off := int64(0)
	for {
		rest := raw[off:]
		if len(rest) < walFrameOverhead {
			break // short header: torn tail
		}
		n := int64(binary.LittleEndian.Uint32(rest))
		crc := binary.LittleEndian.Uint32(rest[4:])
		if n > maxRecordLen || int64(len(rest))-walFrameOverhead < n {
			break // impossible length or short payload: torn tail
		}
		payload := rest[walFrameOverhead : walFrameOverhead+n]
		if crc32.Checksum(payload, crcTable) != crc {
			break // corrupt payload: treat as torn
		}
		records = append(records, walRecord{payload: payload})
		off += walFrameOverhead + n
	}
	return records, off, nil
}

// OpenWAL opens (creating if absent) the log at path, truncates any torn
// tail, and positions for appending. The returned records are the intact
// prefix, for the caller to replay.
func OpenWAL(path string, opts WALOptions) (*WAL, []walRecord, error) {
	records, validLen, err := readWAL(path)
	if err != nil {
		return nil, nil, fmt.Errorf("tasks: reading wal %s: %w", path, err)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	torn := info.Size() - validLen
	if torn > 0 {
		if err := f.Truncate(validLen); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("tasks: truncating torn wal tail: %w", err)
		}
	}
	if _, err := f.Seek(validLen, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	w := &WAL{
		f:         f,
		w:         bufio.NewWriterSize(f, 1<<16),
		mode:      opts.Sync,
		interval:  opts.BatchInterval,
		timerOnly: opts.TimerCommit,
		syncReq:   make(chan struct{}, 1),
		done:      make(chan struct{}),
		loopDone:  make(chan struct{}),
		replayed:  int64(len(records)),
		torn:      torn,
		fsyncObs:  opts.FsyncObserver,
	}
	if w.mode == "" {
		w.mode = SyncBatch
	}
	if w.interval <= 0 {
		w.interval = DefaultBatchInterval
	}
	w.durable = sync.NewCond(&w.mu)
	go w.syncLoop()
	return w, records, nil
}

// Append writes one record and, per the sync mode, waits for it to be
// durable. Safe for concurrent use; the durability wait group-commits:
// every append buffered before a given fsync is acknowledged by it.
func (w *WAL) Append(payload []byte) error {
	seq, err := w.AppendAsync(payload)
	if err != nil {
		return err
	}
	return w.WaitDurable(seq)
}

// AppendAsync buffers one record and returns its sequence number without
// waiting for durability. Callers that must order the append against
// their own state mutation (the task store journals under its mutex)
// buffer here and call WaitDurable after releasing their lock, so
// concurrent writers share one fsync.
func (w *WAL) AppendAsync(payload []byte) (seq uint64, err error) {
	if int64(len(payload)) > maxRecordLen {
		return 0, fmt.Errorf("%w: %d bytes > %d", ErrRecordTooLarge, len(payload), int64(maxRecordLen))
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, ErrWALClosed
	}
	if w.err != nil {
		return 0, w.err
	}
	binary.LittleEndian.PutUint32(w.hdr[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(w.hdr[4:], crc32.Checksum(payload, crcTable))
	if _, err := w.w.Write(w.hdr[:]); err != nil {
		w.err = err
		return 0, err
	}
	if _, err := w.w.Write(payload); err != nil {
		w.err = err
		return 0, err
	}
	w.written++
	w.appends.Add(1)

	if w.mode == SyncOff {
		// Flush to the kernel so readers of the file (and a process
		// crash) see the record; no fsync.
		if err := w.w.Flush(); err != nil {
			w.err = err
			return 0, err
		}
		w.synced = w.written
		return w.written, nil
	}
	if w.mode == SyncAlways || !w.timerOnly {
		// Wake the committer immediately: the pipeline starts the next
		// fsync as soon as the previous one completes. Only the legacy
		// timer-commit mode waits out the batch window.
		select {
		case w.syncReq <- struct{}{}:
		default:
		}
	}
	return w.written, nil
}

// WaitDurable blocks until the record with the given sequence number is
// durable per the sync mode (a no-op for SyncOff). The wait is recorded
// in the durable-wait histogram — zero for the already-synced fast path,
// clock-timed when the caller actually parks.
func (w *WAL) WaitDurable(seq uint64) error {
	w.mu.Lock()
	var waited int64 // 0 for the already-synced fast path
	if w.synced < seq && w.err == nil && !w.closed {
		start := time.Now()
		for w.synced < seq && w.err == nil && !w.closed {
			w.durable.Wait()
		}
		waited = time.Since(start).Nanoseconds()
	}
	err := w.err
	synced := w.synced
	w.mu.Unlock()
	if w.mode != SyncOff {
		w.waitLat.Observe(waited)
	}
	if err != nil {
		return err
	}
	if synced < seq {
		return ErrWALClosed
	}
	return nil
}

// syncLoop is the single fsync issuer. The default is a two-phase
// pipeline: whenever records are pending it flushes and fsyncs
// back-to-back, so batch N+1 accumulates in the buffer while batch N is
// inside fsync and a durability wait costs at most one fsync latency.
// The legacy timer-commit mode instead sleeps out the batch window
// between fsyncs (SyncAlways appends still wake it immediately).
func (w *WAL) syncLoop() {
	defer close(w.loopDone)
	if w.timerOnly {
		ticker := time.NewTicker(w.interval)
		defer ticker.Stop()
		for {
			select {
			case <-w.done:
				return
			case <-w.syncReq:
			case <-ticker.C:
			}
			w.syncOnce()
		}
	}
	for {
		if w.pending() {
			// Yield before each fsync. A channel send puts this goroutine
			// in the scheduler's runnext slot, so without the yield the
			// pipeline wakes the moment the FIRST appender of a burst
			// lands and fsyncs a batch of one while its siblings are
			// still queued behind it; one Gosched lets every runnable
			// appender reach Append before the batch is cut (~3×
			// measured batch size under an 8-way fan-in on one core),
			// at a cost that is noise against the fsync itself.
			runtime.Gosched()
			w.syncOnce()
			continue
		}
		select {
		case <-w.done:
			return
		case <-w.syncReq:
			runtime.Gosched() // same batch-formation yield as above
			w.syncOnce()
		}
	}
}

// pending reports whether un-synced records are waiting on the
// committer. Sticky errors and closure read as "nothing pending" so the
// pipeline parks instead of spinning.
func (w *WAL) pending() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err == nil && !w.closed && w.written > w.synced
}

// syncOnce flushes and fsyncs, advancing the durability watermark.
func (w *WAL) syncOnce() {
	w.mu.Lock()
	if w.err != nil || w.synced == w.written {
		w.mu.Unlock()
		return
	}
	target := w.written
	if err := w.w.Flush(); err != nil {
		w.err = err
		w.durable.Broadcast()
		w.mu.Unlock()
		return
	}
	w.mu.Unlock()

	// fsync outside the lock: appenders keep buffering meanwhile. The
	// kernel persists at least everything flushed above.
	start := time.Now()
	err := w.f.Sync()
	elapsed := time.Since(start).Nanoseconds()
	w.fsyncs.Add(1)
	w.fsyncLat.Observe(elapsed)
	if w.fsyncObs != nil {
		w.fsyncObs(elapsed)
	}

	w.mu.Lock()
	if err != nil && w.err == nil {
		w.err = err
	}
	if err == nil && target > w.synced {
		w.recordBatch(target - w.synced)
		w.synced = target
	}
	w.durable.Broadcast()
	w.mu.Unlock()
}

// recordBatch buckets one fsync's batch size into the histogram:
// bucket i counts batches of ≤ 2^i records.
func (w *WAL) recordBatch(n uint64) {
	b := 0
	for b < walBatchBuckets-1 && n > uint64(1)<<b {
		b++
	}
	w.batchHist[b].Add(1)
}

// Reset truncates the log to empty. Called by snapshot compaction after
// the snapshot containing every logged mutation is durable; the caller
// must ensure no concurrent appends.
func (w *WAL) Reset() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrWALClosed
	}
	if err := w.w.Flush(); err != nil {
		w.err = err
		return err
	}
	if err := w.f.Truncate(0); err != nil {
		w.err = err
		return err
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		w.err = err
		return err
	}
	if err := w.f.Sync(); err != nil {
		w.err = err
		return err
	}
	w.synced = w.written // nothing outstanding
	return nil
}

// Close flushes, syncs and closes the log. Further appends fail.
func (w *WAL) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	flushErr := w.w.Flush()
	if flushErr != nil && w.err == nil {
		w.err = flushErr
	}
	w.mu.Unlock()

	close(w.done)
	<-w.loopDone

	syncErr := w.f.Sync()
	w.mu.Lock()
	if flushErr == nil && syncErr == nil && w.err == nil {
		// The final flush+sync covered everything buffered: acknowledge
		// any waiter that raced the shutdown.
		w.synced = w.written
	}
	w.durable.Broadcast()
	w.mu.Unlock()
	closeErr := w.f.Close()
	switch {
	case flushErr != nil:
		return flushErr
	case syncErr != nil:
		return syncErr
	default:
		return closeErr
	}
}

// Stats returns a snapshot of the log's counters.
func (w *WAL) Stats() WALStats {
	st := WALStats{
		Appends:       w.appends.Load(),
		Fsyncs:        w.fsyncs.Load(),
		ReplayRecords: w.replayed,
		TornBytes:     w.torn,
	}
	for i := range st.FsyncBatchSizes {
		st.FsyncBatchSizes[i] = w.batchHist[i].Load()
	}
	w.mu.Lock()
	st.QueueDepth = int64(w.written - w.synced)
	w.mu.Unlock()
	st.FsyncHist = w.fsyncLat.Snapshot()
	st.DurableWaitHist = w.waitLat.Snapshot()
	st.FsyncP99NS = st.FsyncHist.Quantile(0.99)
	return st
}
