package tasks

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func openTestWAL(t *testing.T, path string, opts WALOptions) (*WAL, []walRecord) {
	t.Helper()
	w, recs, err := OpenWAL(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	return w, recs
}

func TestWALRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, recs := openTestWAL(t, path, WALOptions{Sync: SyncOff})
	if len(recs) != 0 {
		t.Fatalf("fresh log replayed %d records", len(recs))
	}
	var want [][]byte
	for i := 0; i < 100; i++ {
		p := []byte(fmt.Sprintf(`{"i":%d,"pad":"%0*d"}`, i, i%37, i))
		want = append(want, p)
		if err := w.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	_, got := openTestWAL(t, path, WALOptions{Sync: SyncOff})
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if string(got[i].payload) != string(want[i]) {
			t.Fatalf("record %d: %q != %q", i, got[i].payload, want[i])
		}
	}
}

// TestWALTornTailTruncated simulates a crash mid-write: a partial final
// frame must be detected and truncated, preserving every intact record.
func TestWALTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _ := openTestWAL(t, path, WALOptions{Sync: SyncOff})
	for i := 0; i < 10; i++ {
		if err := w.Append([]byte(fmt.Sprintf("record-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	intact, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Three torn shapes: header cut short, payload cut short, and a
	// full-size frame whose payload bytes were garbled before the fsync.
	full := append([]byte(nil), intact...)
	hdr := make([]byte, walFrameOverhead)
	binary.LittleEndian.PutUint32(hdr, 9)
	for name, tail := range map[string][]byte{
		"short header":  hdr[:3],
		"short payload": append(append([]byte(nil), hdr...), []byte("only4")...),
		"bad crc":       append(append([]byte(nil), hdr...), []byte("garbled!!")...),
	} {
		torn := append(append([]byte(nil), full...), tail...)
		if err := os.WriteFile(path, torn, 0o644); err != nil {
			t.Fatal(err)
		}
		w, recs := openTestWAL(t, path, WALOptions{Sync: SyncOff})
		if len(recs) != 10 {
			t.Fatalf("%s: replayed %d records, want 10", name, len(recs))
		}
		st := w.Stats()
		if st.TornBytes != int64(len(tail)) {
			t.Errorf("%s: torn bytes %d, want %d", name, st.TornBytes, len(tail))
		}
		// The torn tail must be gone from disk: appending after recovery
		// yields a clean log.
		if err := w.Append([]byte("post-recovery")); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		_, recs2 := openTestWAL(t, path, WALOptions{Sync: SyncOff})
		if len(recs2) != 11 || string(recs2[10].payload) != "post-recovery" {
			t.Fatalf("%s: post-recovery log replayed %d records", name, len(recs2))
		}
		if err := os.WriteFile(path, nil, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.Remove(path); err != nil {
			t.Fatal(err)
		}
		// Restore the intact base for the next shape.
		if err := os.WriteFile(path, full, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestWALCorruptMiddleStopsReplay verifies that corruption strictly
// inside the log (not just at the tail) cuts replay at the corruption
// point instead of yielding garbage records.
func TestWALCorruptMiddleStopsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _ := openTestWAL(t, path, WALOptions{Sync: SyncOff})
	for i := 0; i < 6; i++ {
		if err := w.Append([]byte(fmt.Sprintf("record-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	frame := walFrameOverhead + len("record-00")
	raw[3*frame+walFrameOverhead] ^= 0xFF // flip a payload byte of record 3
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, recs := openTestWAL(t, path, WALOptions{Sync: SyncOff})
	if len(recs) != 3 {
		t.Fatalf("replayed %d records past corruption, want 3", len(recs))
	}
}

func TestWALGroupCommitConcurrentAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _ := openTestWAL(t, path, WALOptions{Sync: SyncBatch, BatchInterval: 1e6})
	const writers, each = 8, 25
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if err := w.Append([]byte(fmt.Sprintf("g%02d-%02d", g, i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := w.Stats()
	if st.Appends != writers*each {
		t.Fatalf("appends %d, want %d", st.Appends, writers*each)
	}
	if st.Fsyncs == 0 || st.Fsyncs >= st.Appends {
		t.Fatalf("group commit did not batch: %d fsyncs for %d appends", st.Fsyncs, st.Appends)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs := openTestWAL(t, path, WALOptions{Sync: SyncOff})
	if len(recs) != writers*each {
		t.Fatalf("replayed %d records, want %d", len(recs), writers*each)
	}
}

func TestWALSyncAlwaysIsDurablePerAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _ := openTestWAL(t, path, WALOptions{Sync: SyncAlways})
	for i := 0; i < 5; i++ {
		if err := w.Append([]byte(fmt.Sprintf("r%d", i))); err != nil {
			t.Fatal(err)
		}
		// No Close, no flush: the record must already be on disk.
		_, validLen, err := readWAL(path)
		if err != nil {
			t.Fatal(err)
		}
		if validLen == 0 {
			t.Fatalf("append %d acknowledged before reaching disk", i)
		}
	}
	if st := w.Stats(); st.Fsyncs == 0 || st.FsyncP99NS == 0 {
		t.Fatalf("stats = %+v, want fsyncs and latency recorded", st)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestWALAppendAfterCloseFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _ := openTestWAL(t, path, WALOptions{Sync: SyncOff})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("x")); err != ErrWALClosed {
		t.Fatalf("append after close = %v, want ErrWALClosed", err)
	}
}

// TestWALAppendAllocFree is the alloc guard of the BENCH_PR5 trajectory:
// the append hot path (frame + CRC + buffered write) must not allocate.
func TestWALAppendAllocFree(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _ := openTestWAL(t, path, WALOptions{Sync: SyncOff})
	defer w.Close() //nolint:errcheck
	payload := []byte(`{"t":"vote","task":"t00000001","juror":"j00042","vote":true}`)
	allocs := testing.AllocsPerRun(200, func() {
		if err := w.Append(payload); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("WAL append allocates %.1f objects/op, want 0", allocs)
	}
}

func TestWALRejectsOversizedRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _ := openTestWAL(t, path, WALOptions{Sync: SyncOff})
	defer w.Close() //nolint:errcheck
	huge := make([]byte, maxRecordLen+1)
	if _, err := w.AppendAsync(huge); err == nil {
		t.Fatal("oversized record accepted: it would be silently truncated as a torn tail on replay")
	}
	// The log is untouched and still accepts normal records.
	if err := w.Append([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	if st := w.Stats(); st.Appends != 1 {
		t.Fatalf("appends = %d, want 1", st.Appends)
	}
}
