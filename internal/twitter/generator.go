package twitter

import (
	"fmt"

	"juryselect/internal/randx"
)

// GeneratorConfig parameterizes the synthetic corpus. The defaults (applied
// by Generate for zero fields) produce a corpus whose retweet graph shows
// the power-law in-degree profile the paper observes on real Twitter data
// ("Due to the Power law distribution characteristics of social network
// users", §4.1.3): a small head of highly retweeted accounts and a long
// sparse tail.
type GeneratorConfig struct {
	// Users is the population size (default 10000). User names are
	// "u<number>"; lower numbers are more popular, mimicking celebrity and
	// mainstream-media accounts.
	Users int
	// Tweets is the number of records to generate (default 5·Users).
	Tweets int
	// PopularityExponent is the Zipf exponent of retweet popularity
	// (default 1.1).
	PopularityExponent float64
	// RetweetFraction is the fraction of tweets that contain at least one
	// RT marker (default 0.6; the rest are plain tweets that add nodes but
	// no edges, like the sparse majority in the paper's 689,050-user
	// sample).
	RetweetFraction float64
	// ChainContinue is the probability that a retweet chain extends one
	// hop further (chain length ≈ 1 + Geometric; default 0.25, keeping
	// chains short as on real Twitter).
	ChainContinue float64
	// MaxAccountAgeDays bounds the uniform account-age attribute (default
	// 3650 days ≈ 10 years of Twitter history as of the paper's writing).
	MaxAccountAgeDays float64
}

func (c GeneratorConfig) withDefaults() GeneratorConfig {
	if c.Users <= 0 {
		c.Users = 10000
	}
	if c.Tweets <= 0 {
		c.Tweets = 5 * c.Users
	}
	if c.PopularityExponent <= 0 {
		c.PopularityExponent = 1.1
	}
	if c.RetweetFraction <= 0 || c.RetweetFraction > 1 {
		c.RetweetFraction = 0.6
	}
	if c.ChainContinue <= 0 || c.ChainContinue >= 1 {
		c.ChainContinue = 0.25
	}
	if c.MaxAccountAgeDays <= 0 {
		c.MaxAccountAgeDays = 3650
	}
	return c
}

// Corpus is a generated tweet dataset.
type Corpus struct {
	Tweets   []Record
	Profiles []Profile
}

// Profile returns the profile for a user name, or false when unknown.
func (c *Corpus) Profile(name string) (Profile, bool) {
	for _, p := range c.Profiles {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// fillers provides innocuous tweet text so generated records look like the
// real markup Algorithm 5 parses (text before, between and after markers).
var fillers = []string{
	"is Doner Kebab available in Hong Kong?",
	"will iPhone5 come before August?",
	"earthquake reported near the coast, stay safe",
	"is Turkey in Europe or in Asia?",
	"breaking: markets moving fast today",
	"anyone knows a good dress for the banquet?",
	"this looks like political astroturf to me",
	"so true",
	"interesting thread",
	"cannot believe this",
}

// Generate produces a deterministic synthetic corpus from the config and
// seed source. Popular users (low index) are preferentially chosen as
// retweet targets via a Zipf draw, while tweet authors are drawn uniformly;
// the resulting retweet graph concentrates in-degree on the head users
// exactly as influence concentrates on mainstream accounts in the paper's
// dataset.
func Generate(cfg GeneratorConfig, src *randx.Source) *Corpus {
	cfg = cfg.withDefaults()
	names := make([]string, cfg.Users)
	profiles := make([]Profile, cfg.Users)
	for i := range names {
		names[i] = fmt.Sprintf("u%d", i+1)
		profiles[i] = Profile{
			Name:           names[i],
			AccountAgeDays: 1 + src.Float64()*(cfg.MaxAccountAgeDays-1),
		}
	}
	popularity := randx.NewZipf(src.Split("popularity"), cfg.Users, cfg.PopularityExponent)
	textSrc := src.Split("text")
	tweets := make([]Record, 0, cfg.Tweets)
	for t := 0; t < cfg.Tweets; t++ {
		author := names[src.Intn(cfg.Users)]
		content := fillers[textSrc.Intn(len(fillers))]
		if src.Bernoulli(cfg.RetweetFraction) {
			// Build a retweet chain: each hop lands on a Zipf-popular
			// user distinct from its predecessor.
			prev := author
			for {
				target := names[popularity.Draw()-1]
				if target == prev {
					// Redraw once; if still colliding, stop the chain.
					target = names[popularity.Draw()-1]
					if target == prev {
						break
					}
				}
				content = fmt.Sprintf("RT @%s: %s", target, content)
				prev = target
				if !src.Bernoulli(cfg.ChainContinue) {
					break
				}
			}
		}
		tweets = append(tweets, Record{Author: author, Content: content})
	}
	return &Corpus{Tweets: tweets, Profiles: profiles}
}
