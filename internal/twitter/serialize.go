package twitter

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strings"
)

// WriteTSV writes tweets as "author<TAB>content" lines — the interchange
// format cmd/tweetrank reads — so synthetic corpora can be exported, edited
// and replayed. Authors and content must not contain tabs or newlines;
// offending records are rejected rather than silently mangled.
func WriteTSV(w io.Writer, tweets []Record) error {
	bw := bufio.NewWriter(w)
	for i, tw := range tweets {
		if strings.ContainsAny(tw.Author, "\t\n") || strings.ContainsAny(tw.Content, "\t\n") {
			return fmt.Errorf("twitter: record %d contains a tab or newline", i)
		}
		if tw.Author == "" {
			return fmt.Errorf("twitter: record %d has an empty author", i)
		}
		if _, err := fmt.Fprintf(bw, "%s\t%s\n", tw.Author, tw.Content); err != nil {
			return fmt.Errorf("twitter: writing TSV: %w", err)
		}
	}
	return bw.Flush()
}

// ReadTSV parses "author<TAB>content" lines, skipping blank lines.
func ReadTSV(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	var out []Record
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if strings.TrimSpace(text) == "" {
			continue
		}
		author, content, ok := strings.Cut(text, "\t")
		if !ok || author == "" {
			return nil, fmt.Errorf("twitter: line %d: want 'author<TAB>content'", line)
		}
		out = append(out, Record{Author: author, Content: content})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("twitter: reading TSV: %w", err)
	}
	if len(out) == 0 {
		return nil, errors.New("twitter: no tweets in input")
	}
	return out, nil
}
