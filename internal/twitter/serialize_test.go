package twitter

import (
	"bytes"
	"strings"
	"testing"

	"juryselect/internal/randx"
)

func TestTSVRoundTrip(t *testing.T) {
	c := Generate(GeneratorConfig{Users: 50, Tweets: 300}, randx.New(3))
	var buf bytes.Buffer
	if err := WriteTSV(&buf, c.Tweets); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(c.Tweets) {
		t.Fatalf("round trip: %d tweets, want %d", len(back), len(c.Tweets))
	}
	for i := range back {
		if back[i] != c.Tweets[i] {
			t.Fatalf("tweet %d changed: %+v vs %+v", i, back[i], c.Tweets[i])
		}
	}
}

func TestWriteTSVRejectsBadRecords(t *testing.T) {
	cases := []Record{
		{Author: "tab\tuser", Content: "x"},
		{Author: "a", Content: "line\nbreak"},
		{Author: "", Content: "anonymous"},
	}
	for _, rec := range cases {
		var buf bytes.Buffer
		if err := WriteTSV(&buf, []Record{rec}); err == nil {
			t.Errorf("record %+v accepted", rec)
		}
	}
}

func TestReadTSVErrors(t *testing.T) {
	if _, err := ReadTSV(strings.NewReader("")); err == nil {
		t.Error("expected error for empty input")
	}
	if _, err := ReadTSV(strings.NewReader("no-tab\n")); err == nil {
		t.Error("expected error for missing tab")
	}
	if _, err := ReadTSV(strings.NewReader("\tno-author\n")); err == nil {
		t.Error("expected error for empty author")
	}
}

func TestReadTSVSkipsBlankLines(t *testing.T) {
	recs, err := ReadTSV(strings.NewReader("a\tx\n\n\nb\ty\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
}

// TestTSVFeedsParser: a serialized corpus must parse identically to the
// in-memory one (the RT chains survive the round trip).
func TestTSVFeedsParser(t *testing.T) {
	c := Generate(GeneratorConfig{Users: 30, Tweets: 100}, randx.New(4))
	var buf bytes.Buffer
	if err := WriteTSV(&buf, c.Tweets); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range back {
		orig := RetweetPairs(c.Tweets[i])
		got := RetweetPairs(back[i])
		if len(orig) != len(got) {
			t.Fatalf("tweet %d: pair count changed %d vs %d", i, len(got), len(orig))
		}
		for k := range orig {
			if orig[k] != got[k] {
				t.Fatalf("tweet %d pair %d changed", i, k)
			}
		}
	}
}
