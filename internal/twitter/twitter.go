// Package twitter models the micro-blog data layer of Section 4: tweet
// records, the "RT @username" retweet-chain extraction that feeds graph
// construction (Algorithm 5), and a synthetic corpus generator standing in
// for the paper's proprietary two-day public-timeline sample (see the
// substitution table in DESIGN.md §4).
package twitter

import (
	"regexp"
	"strings"
)

// Record is one published tweet.
type Record struct {
	// Author is the user who released the tweet.
	Author string
	// Content is the raw tweet text, possibly containing one or more
	// "RT @username" markers forming a retweet chain.
	Content string
}

// Profile carries the per-user attributes used for parameter estimation.
type Profile struct {
	// Name is the user name.
	Name string
	// AccountAgeDays is the account age since registration, the indicator
	// §4.2 proposes for the payment requirement.
	AccountAgeDays float64
}

// rtPattern matches the paper's marker 'RT @[\w]+' (Algorithm 5, Line 6).
var rtPattern = regexp.MustCompile(`RT @(\w+)`)

// RetweetChain extracts the usernames mentioned by "RT @" markers in
// content, in order of appearance. Following §4.1.1, a tweet by author a
// with chain [u1, u2, ..., uk] encodes the retweet-relationship pairs
// (a,u1), (u1,u2), ..., (u(k-1),uk).
func RetweetChain(content string) []string {
	matches := rtPattern.FindAllStringSubmatch(content, -1)
	if len(matches) == 0 {
		return nil
	}
	users := make([]string, 0, len(matches))
	for _, m := range matches {
		users = append(users, m[1])
	}
	return users
}

// Pair is an ordered retweet-relationship pair: From retweeted To.
type Pair struct {
	From, To string
}

// RetweetPairs applies Algorithm 5's chain rule to one record and returns
// its retweet-relationship pairs. Pairs whose endpoints coincide (a user
// "retweeting" themselves, which malformed tweets can produce) are dropped,
// matching the graph layer's self-loop rejection.
func RetweetPairs(r Record) []Pair {
	chain := RetweetChain(r.Content)
	if len(chain) == 0 {
		return nil
	}
	pairs := make([]Pair, 0, len(chain))
	last := r.Author
	for _, u := range chain {
		if last != u {
			pairs = append(pairs, Pair{From: last, To: u})
		}
		last = u
	}
	return pairs
}

// StripMarkers removes all "RT @user" markers from content, leaving the
// free text. Utility for display and tests.
func StripMarkers(content string) string {
	out := rtPattern.ReplaceAllString(content, "")
	return strings.Join(strings.Fields(out), " ")
}
