package twitter

import (
	"strings"
	"testing"

	"juryselect/internal/randx"
)

func TestRetweetChainSingle(t *testing.T) {
	// Case 1 of §4.1.1: exactly one "RT @username" substring.
	got := RetweetChain("so cool RT @alice: is Turkey in Europe?")
	if len(got) != 1 || got[0] != "alice" {
		t.Fatalf("chain = %v, want [alice]", got)
	}
}

func TestRetweetChainMultiple(t *testing.T) {
	// Case 2: a chain "RT @b: RT @c:" means the author retweeted b who
	// retweeted c.
	got := RetweetChain("RT @bob: RT @carol: original text")
	if len(got) != 2 || got[0] != "bob" || got[1] != "carol" {
		t.Fatalf("chain = %v, want [bob carol]", got)
	}
}

func TestRetweetChainNone(t *testing.T) {
	for _, content := range []string{
		"no markers here",
		"",
		"rt @lowercase is not a marker",
		"RT without at-sign",
		"@mention without RT",
	} {
		if got := RetweetChain(content); got != nil {
			t.Errorf("RetweetChain(%q) = %v, want nil", content, got)
		}
	}
}

func TestRetweetChainMalformed(t *testing.T) {
	// Failure injection: half-markers and unicode punctuation must not
	// panic and must extract only well-formed usernames.
	cases := map[string][]string{
		"RT @":                      nil,
		"RT @ alice":                nil,
		"RT @@double":               nil, // '@' after the marker is not a \w char
		"xxRT @tail":                {"tail"},
		"RT @a RT @b RT @":          {"a", "b"},
		"RT @under_score99 then":    {"under_score99"},
		"RT @名前 unicode user":       nil,       // \w matches ASCII word chars only
		"RT @mixed名 unicode suffix": {"mixed"}, // match stops at the first non-\w rune
	}
	for content, want := range cases {
		got := RetweetChain(content)
		if len(got) != len(want) {
			t.Errorf("RetweetChain(%q) = %v, want %v", content, got, want)
			continue
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("RetweetChain(%q) = %v, want %v", content, got, want)
			}
		}
	}
}

func TestRetweetPairsChainRule(t *testing.T) {
	r := Record{Author: "amy", Content: "RT @bob: RT @carol: text"}
	pairs := RetweetPairs(r)
	want := []Pair{{"amy", "bob"}, {"bob", "carol"}}
	if len(pairs) != len(want) {
		t.Fatalf("pairs = %v, want %v", pairs, want)
	}
	for i := range want {
		if pairs[i] != want[i] {
			t.Fatalf("pairs = %v, want %v", pairs, want)
		}
	}
}

func TestRetweetPairsDropsSelfPairs(t *testing.T) {
	r := Record{Author: "amy", Content: "RT @amy: echo chamber"}
	if pairs := RetweetPairs(r); len(pairs) != 0 {
		t.Fatalf("pairs = %v, want none", pairs)
	}
	r = Record{Author: "amy", Content: "RT @bob: RT @bob: duplicated hop"}
	pairs := RetweetPairs(r)
	if len(pairs) != 1 || pairs[0] != (Pair{"amy", "bob"}) {
		t.Fatalf("pairs = %v, want [{amy bob}]", pairs)
	}
}

func TestRetweetPairsPlainTweet(t *testing.T) {
	if pairs := RetweetPairs(Record{Author: "a", Content: "plain"}); pairs != nil {
		t.Fatalf("pairs = %v, want nil", pairs)
	}
}

func TestStripMarkers(t *testing.T) {
	got := StripMarkers("RT @a: RT @b: hello   world")
	if got != ": : hello world" && got != "hello world" {
		// Exact residue depends on the separator text; what matters is that
		// no marker remains.
		if strings.Contains(got, "RT @") {
			t.Fatalf("marker survived: %q", got)
		}
	}
	if RetweetChain(got) != nil {
		t.Fatalf("stripped text still parses: %q", got)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := GeneratorConfig{Users: 50, Tweets: 200}
	a := Generate(cfg, randx.New(42))
	b := Generate(cfg, randx.New(42))
	if len(a.Tweets) != len(b.Tweets) {
		t.Fatal("tweet counts differ")
	}
	for i := range a.Tweets {
		if a.Tweets[i] != b.Tweets[i] {
			t.Fatalf("tweet %d differs: %+v vs %+v", i, a.Tweets[i], b.Tweets[i])
		}
	}
}

func TestGenerateShape(t *testing.T) {
	cfg := GeneratorConfig{Users: 100, Tweets: 1000}
	c := Generate(cfg, randx.New(7))
	if len(c.Tweets) != 1000 {
		t.Fatalf("tweets = %d", len(c.Tweets))
	}
	if len(c.Profiles) != 100 {
		t.Fatalf("profiles = %d", len(c.Profiles))
	}
	withRT := 0
	for _, tw := range c.Tweets {
		if tw.Author == "" || tw.Content == "" {
			t.Fatal("empty author or content")
		}
		if len(RetweetChain(tw.Content)) > 0 {
			withRT++
		}
	}
	frac := float64(withRT) / float64(len(c.Tweets))
	if frac < 0.4 || frac > 0.8 {
		t.Errorf("retweet fraction %g outside sane band around default 0.6", frac)
	}
	for _, p := range c.Profiles {
		if p.AccountAgeDays < 1 || p.AccountAgeDays > 3650 {
			t.Errorf("account age %g out of range", p.AccountAgeDays)
		}
	}
}

func TestGeneratePopularityIsSkewed(t *testing.T) {
	// Head users (low index) must collect far more retweet mentions than
	// tail users — the power-law shape the substitution relies on.
	c := Generate(GeneratorConfig{Users: 200, Tweets: 4000}, randx.New(9))
	mentions := map[string]int{}
	for _, tw := range c.Tweets {
		for _, u := range RetweetChain(tw.Content) {
			mentions[u]++
		}
	}
	head := mentions["u1"] + mentions["u2"] + mentions["u3"]
	tail := mentions["u198"] + mentions["u199"] + mentions["u200"]
	if head <= 5*tail {
		t.Errorf("popularity not skewed: head=%d tail=%d", head, tail)
	}
}

func TestCorpusProfileLookup(t *testing.T) {
	c := Generate(GeneratorConfig{Users: 10, Tweets: 10}, randx.New(1))
	if _, ok := c.Profile("u1"); !ok {
		t.Fatal("u1 missing")
	}
	if _, ok := c.Profile("ghost"); ok {
		t.Fatal("ghost found")
	}
}

func TestGenerateDefaults(t *testing.T) {
	cfg := GeneratorConfig{}.withDefaults()
	if cfg.Users != 10000 || cfg.Tweets != 50000 {
		t.Fatalf("defaults: %+v", cfg)
	}
	if cfg.PopularityExponent != 1.1 || cfg.RetweetFraction != 0.6 {
		t.Fatalf("defaults: %+v", cfg)
	}
}
