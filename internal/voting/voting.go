// Package voting implements the Majority Voting scheme of Definition 3 and
// a decision-task simulator.
//
// A Voting (Definition 2) is a set of binary opinions returned by a jury on
// a decision-making task with a latent ground truth. MajorityVote aggregates
// a voting into a single decision. Simulator draws complete votings from the
// jurors' individual error rates, so empirical jury failure frequencies can
// be compared against the analytic Jury Error Rate — the law-of-large-numbers
// validation used in the tests and the rumor example.
package voting

import (
	"errors"
	"fmt"

	"juryselect/internal/pbdist"
	"juryselect/internal/randx"
)

// Decision is the outcome of aggregating a voting.
type Decision int

const (
	// No is the negative decision (0 in the paper's notation).
	No Decision = 0
	// Yes is the positive decision (1 in the paper's notation).
	Yes Decision = 1
	// Tie reports an even split; only possible for even jury sizes, which
	// Definition 3 excludes but the API tolerates.
	Tie Decision = 2
)

// String returns the decision name.
func (d Decision) String() string {
	switch d {
	case No:
		return "no"
	case Yes:
		return "yes"
	case Tie:
		return "tie"
	default:
		return fmt.Sprintf("Decision(%d)", int(d))
	}
}

// ErrEmptyVoting reports aggregation of zero votes.
var ErrEmptyVoting = errors.New("voting: empty voting")

// MajorityVote implements Definition 3: it returns Yes when at least
// (n+1)/2 of the votes are true, No when at most (n-1)/2 are, and Tie on an
// exact even split.
func MajorityVote(votes []bool) (Decision, error) {
	n := len(votes)
	if n == 0 {
		return No, ErrEmptyVoting
	}
	yes := 0
	for _, v := range votes {
		if v {
			yes++
		}
	}
	no := n - yes
	switch {
	case yes > no:
		return Yes, nil
	case no > yes:
		return No, nil
	default:
		return Tie, nil
	}
}

// Task is a decision-making task with a latent binary ground truth, e.g.
// "Is Turkey in Europe?" or "is this tweet a rumor?". The truth is hidden
// from the jury; the simulator uses it to decide whether each sampled vote
// is correct.
type Task struct {
	// ID labels the task in reports.
	ID string
	// Truth is the latent correct answer.
	Truth Decision
}

// Simulator draws votings for juries described by individual error rates.
type Simulator struct {
	src *randx.Source
}

// NewSimulator returns a simulator drawing randomness from src.
func NewSimulator(src *randx.Source) *Simulator {
	return &Simulator{src: src}
}

// Vote samples one voting for a task: juror i votes the truth with
// probability 1-rates[i] and the opposite with probability rates[i]
// (Definition 4). The returned slice holds each juror's opinion as a
// boolean where true means Yes.
func (s *Simulator) Vote(task Task, rates []float64) ([]bool, error) {
	if err := pbdist.ValidateRates(rates); err != nil {
		return nil, err
	}
	if task.Truth != Yes && task.Truth != No {
		return nil, fmt.Errorf("voting: task %q has no binary ground truth", task.ID)
	}
	votes := make([]bool, len(rates))
	truth := task.Truth == Yes
	for i, e := range rates {
		if s.src.Bernoulli(e) {
			votes[i] = !truth
		} else {
			votes[i] = truth
		}
	}
	return votes, nil
}

// Outcome summarises a simulated batch of tasks for one jury.
type Outcome struct {
	// Tasks is the number of simulated decision tasks.
	Tasks int
	// Correct counts tasks where the majority decision matched the truth.
	Correct int
	// Wrong counts tasks where the majority decision opposed the truth.
	Wrong int
	// Ties counts undecided tasks (even juries only).
	Ties int
}

// ErrorRate returns the empirical jury error rate: wrong decisions (ties
// count as wrong, since no decision was delivered) over all tasks.
func (o Outcome) ErrorRate() float64 {
	if o.Tasks == 0 {
		return 0
	}
	return float64(o.Wrong+o.Ties) / float64(o.Tasks)
}

// Run simulates tasks independent decision tasks (alternating latent
// truths) for a jury with the given error rates and reports the aggregate
// outcome. With an odd jury the empirical ErrorRate converges to the
// analytic JER as tasks grows.
func (s *Simulator) Run(rates []float64, tasks int) (Outcome, error) {
	if len(rates) == 0 {
		return Outcome{}, ErrEmptyVoting
	}
	if tasks <= 0 {
		return Outcome{}, errors.New("voting: Run requires tasks > 0")
	}
	if err := pbdist.ValidateRates(rates); err != nil {
		return Outcome{}, err
	}
	var out Outcome
	for t := 0; t < tasks; t++ {
		truth := Yes
		if t%2 == 1 {
			truth = No
		}
		task := Task{ID: fmt.Sprintf("task-%d", t), Truth: truth}
		votes, err := s.Vote(task, rates)
		if err != nil {
			return Outcome{}, err
		}
		dec, err := MajorityVote(votes)
		if err != nil {
			return Outcome{}, err
		}
		out.Tasks++
		switch {
		case dec == Tie:
			out.Ties++
		case dec == truth:
			out.Correct++
		default:
			out.Wrong++
		}
	}
	return out, nil
}
