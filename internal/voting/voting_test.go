package voting

import (
	"errors"
	"math"
	"testing"

	"juryselect/internal/jer"
	"juryselect/internal/randx"
)

func TestMajorityVoteBasic(t *testing.T) {
	cases := []struct {
		votes []bool
		want  Decision
	}{
		{[]bool{true}, Yes},
		{[]bool{false}, No},
		{[]bool{true, true, false}, Yes},
		{[]bool{true, false, false}, No},
		{[]bool{true, false}, Tie},
		{[]bool{true, true, false, false}, Tie},
		{[]bool{true, true, true, false, false}, Yes},
	}
	for _, tc := range cases {
		got, err := MajorityVote(tc.votes)
		if err != nil {
			t.Fatalf("%v: %v", tc.votes, err)
		}
		if got != tc.want {
			t.Errorf("MajorityVote(%v) = %v, want %v", tc.votes, got, tc.want)
		}
	}
}

func TestMajorityVoteEmpty(t *testing.T) {
	if _, err := MajorityVote(nil); !errors.Is(err, ErrEmptyVoting) {
		t.Fatalf("err = %v, want ErrEmptyVoting", err)
	}
}

func TestDecisionString(t *testing.T) {
	for d, want := range map[Decision]string{No: "no", Yes: "yes", Tie: "tie"} {
		if d.String() != want {
			t.Errorf("String(%d) = %q, want %q", int(d), d.String(), want)
		}
	}
	if Decision(9).String() != "Decision(9)" {
		t.Errorf("unexpected: %q", Decision(9).String())
	}
}

func TestVoteRespectsTruth(t *testing.T) {
	// With near-zero error rates every vote must match the truth.
	sim := NewSimulator(randx.New(1))
	rates := []float64{1e-9, 1e-9, 1e-9}
	votes, err := sim.Vote(Task{ID: "t", Truth: Yes}, rates)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range votes {
		if !v {
			t.Errorf("juror %d voted against truth despite ε≈0", i)
		}
	}
	votes, err = sim.Vote(Task{ID: "t", Truth: No}, rates)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range votes {
		if v {
			t.Errorf("juror %d voted against truth despite ε≈0", i)
		}
	}
}

func TestVoteValidation(t *testing.T) {
	sim := NewSimulator(randx.New(2))
	if _, err := sim.Vote(Task{Truth: Yes}, []float64{2}); err == nil {
		t.Error("expected error for invalid rate")
	}
	if _, err := sim.Vote(Task{Truth: Tie}, []float64{0.5}); err == nil {
		t.Error("expected error for non-binary truth")
	}
}

func TestVoteFrequencyMatchesErrorRate(t *testing.T) {
	sim := NewSimulator(randx.New(3))
	rates := []float64{0.25}
	task := Task{ID: "x", Truth: Yes}
	const trials = 100000
	wrong := 0
	for i := 0; i < trials; i++ {
		votes, err := sim.Vote(task, rates)
		if err != nil {
			t.Fatal(err)
		}
		if !votes[0] {
			wrong++
		}
	}
	got := float64(wrong) / trials
	if math.Abs(got-0.25) > 0.01 {
		t.Errorf("empirical individual error rate %g, want ≈ 0.25", got)
	}
}

func TestRunEmpiricalErrorRateMatchesJER(t *testing.T) {
	// The central consistency check of the whole model: simulated majority
	// voting failure frequency must converge to the analytic JER.
	sim := NewSimulator(randx.New(4))
	rates := []float64{0.1, 0.2, 0.2, 0.3, 0.3}
	want, err := jer.DP(rates)
	if err != nil {
		t.Fatal(err)
	}
	const tasks = 300000
	out, err := sim.Run(rates, tasks)
	if err != nil {
		t.Fatal(err)
	}
	if out.Tasks != tasks || out.Correct+out.Wrong+out.Ties != tasks {
		t.Fatalf("outcome counts inconsistent: %+v", out)
	}
	if out.Ties != 0 {
		t.Fatalf("odd jury produced %d ties", out.Ties)
	}
	got := out.ErrorRate()
	sigma := math.Sqrt(want * (1 - want) / tasks)
	if math.Abs(got-want) > 4*sigma+1e-4 {
		t.Errorf("empirical %g vs analytic %g (σ=%g)", got, want, sigma)
	}
}

func TestRunEvenJuryTies(t *testing.T) {
	sim := NewSimulator(randx.New(5))
	out, err := sim.Run([]float64{0.5, 0.5}, 20000)
	if err != nil {
		t.Fatal(err)
	}
	// Two fair coins tie with probability 1/2.
	frac := float64(out.Ties) / float64(out.Tasks)
	if math.Abs(frac-0.5) > 0.02 {
		t.Errorf("tie fraction %g, want ≈ 0.5", frac)
	}
}

func TestRunValidation(t *testing.T) {
	sim := NewSimulator(randx.New(6))
	if _, err := sim.Run(nil, 10); !errors.Is(err, ErrEmptyVoting) {
		t.Error("expected ErrEmptyVoting")
	}
	if _, err := sim.Run([]float64{0.5}, 0); err == nil {
		t.Error("expected error for zero tasks")
	}
	if _, err := sim.Run([]float64{1.5}, 10); err == nil {
		t.Error("expected error for invalid rates")
	}
}

func TestOutcomeErrorRateEmpty(t *testing.T) {
	if got := (Outcome{}).ErrorRate(); got != 0 {
		t.Errorf("ErrorRate of empty outcome = %g, want 0", got)
	}
}
