package voting

import (
	"errors"
	"fmt"
	"math"

	"juryselect/internal/pbdist"
)

// This file implements weighted majority voting, an extension beyond the
// paper's plain Majority Voting (Definition 3). When the individual error
// rates are known — which jury selection already assumes — the
// Bayes-optimal aggregation of independent binary votes weights each vote
// by its log-odds of correctness,
//
//	w_i = log((1-ε_i)/ε_i),
//
// the classical Nitzan–Paroush rule. Plain majority voting is the special
// case of equal weights. The ablation harness uses this to quantify how
// much accuracy the paper's scheme leaves on the table by ignoring ε at
// aggregation time (it only uses ε at selection time).

// ErrWeightMismatch reports votes and rates of different lengths.
var ErrWeightMismatch = errors.New("voting: votes and rates length mismatch")

// LogOddsWeights returns the Bayes-optimal vote weights for the given
// error rates. Rates must lie in (0,1); a rate below 1/2 yields a positive
// weight, a rate above 1/2 a negative one (an anti-expert's vote counts
// against its stated direction).
func LogOddsWeights(rates []float64) ([]float64, error) {
	if err := pbdist.ValidateRates(rates); err != nil {
		return nil, err
	}
	w := make([]float64, len(rates))
	for i, e := range rates {
		w[i] = math.Log((1 - e) / e)
	}
	return w, nil
}

// WeightedMajorityVote aggregates votes with the log-odds weights of the
// given error rates: it returns Yes when the weighted sum of Yes votes
// exceeds that of No votes, No in the opposite case, and Tie on an exact
// balance (measure-zero for generic rates).
func WeightedMajorityVote(votes []bool, rates []float64) (Decision, error) {
	if len(votes) == 0 {
		return No, ErrEmptyVoting
	}
	if len(votes) != len(rates) {
		return No, fmt.Errorf("%w: %d votes, %d rates", ErrWeightMismatch, len(votes), len(rates))
	}
	w, err := LogOddsWeights(rates)
	if err != nil {
		return No, err
	}
	score := 0.0
	for i, v := range votes {
		if v {
			score += w[i]
		} else {
			score -= w[i]
		}
	}
	switch {
	case score > 0:
		return Yes, nil
	case score < 0:
		return No, nil
	default:
		return Tie, nil
	}
}

// RunWeighted simulates tasks like Run but aggregates with
// WeightedMajorityVote instead of plain majority. Comparing the two
// outcomes on the same jury isolates the value of ε-aware aggregation.
func (s *Simulator) RunWeighted(rates []float64, tasks int) (Outcome, error) {
	if len(rates) == 0 {
		return Outcome{}, ErrEmptyVoting
	}
	if tasks <= 0 {
		return Outcome{}, errors.New("voting: RunWeighted requires tasks > 0")
	}
	if err := pbdist.ValidateRates(rates); err != nil {
		return Outcome{}, err
	}
	var out Outcome
	for t := 0; t < tasks; t++ {
		truth := Yes
		if t%2 == 1 {
			truth = No
		}
		task := Task{ID: fmt.Sprintf("task-%d", t), Truth: truth}
		votes, err := s.Vote(task, rates)
		if err != nil {
			return Outcome{}, err
		}
		dec, err := WeightedMajorityVote(votes, rates)
		if err != nil {
			return Outcome{}, err
		}
		out.Tasks++
		switch {
		case dec == Tie:
			out.Ties++
		case dec == truth:
			out.Correct++
		default:
			out.Wrong++
		}
	}
	return out, nil
}
