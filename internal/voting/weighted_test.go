package voting

import (
	"errors"
	"math"
	"testing"

	"juryselect/internal/jer"
	"juryselect/internal/randx"
)

func TestLogOddsWeightsSigns(t *testing.T) {
	w, err := LogOddsWeights([]float64{0.1, 0.5, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if !(w[0] > 0) {
		t.Errorf("reliable juror weight %g, want > 0", w[0])
	}
	if math.Abs(w[1]) > 1e-12 {
		t.Errorf("coin-flip juror weight %g, want 0", w[1])
	}
	if !(w[2] < 0) {
		t.Errorf("anti-expert weight %g, want < 0", w[2])
	}
	// Symmetry: w(ε) = -w(1-ε).
	if math.Abs(w[0]+w[2]) > 1e-12 {
		t.Errorf("weights not antisymmetric: %g vs %g", w[0], w[2])
	}
}

func TestLogOddsWeightsValidation(t *testing.T) {
	if _, err := LogOddsWeights([]float64{0}); err == nil {
		t.Error("expected error for ε = 0")
	}
	if _, err := LogOddsWeights([]float64{1}); err == nil {
		t.Error("expected error for ε = 1")
	}
}

func TestWeightedMajorityReliableMinorityWins(t *testing.T) {
	// One near-perfect juror against two mediocre ones: the weighted rule
	// must side with the expert even when outvoted.
	rates := []float64{0.01, 0.45, 0.45}
	votes := []bool{true, false, false}
	d, err := WeightedMajorityVote(votes, rates)
	if err != nil {
		t.Fatal(err)
	}
	if d != Yes {
		t.Errorf("weighted vote = %v, want Yes (expert outweighs two coin-flippers)", d)
	}
	// Plain majority goes the other way — that's the gap being measured.
	plain, err := MajorityVote(votes)
	if err != nil {
		t.Fatal(err)
	}
	if plain != No {
		t.Errorf("plain vote = %v, want No", plain)
	}
}

func TestWeightedMajorityEqualRatesMatchesPlain(t *testing.T) {
	// With homogeneous reliable jurors, weighted and plain majority agree
	// on every voting.
	rates := []float64{0.3, 0.3, 0.3, 0.3, 0.3}
	src := randx.New(8)
	for trial := 0; trial < 200; trial++ {
		votes := make([]bool, len(rates))
		for i := range votes {
			votes[i] = src.Bernoulli(0.5)
		}
		wd, err := WeightedMajorityVote(votes, rates)
		if err != nil {
			t.Fatal(err)
		}
		pd, err := MajorityVote(votes)
		if err != nil {
			t.Fatal(err)
		}
		if wd != pd {
			t.Fatalf("votes %v: weighted %v vs plain %v", votes, wd, pd)
		}
	}
}

func TestWeightedMajorityValidation(t *testing.T) {
	if _, err := WeightedMajorityVote(nil, nil); !errors.Is(err, ErrEmptyVoting) {
		t.Error("expected ErrEmptyVoting")
	}
	if _, err := WeightedMajorityVote([]bool{true}, []float64{0.2, 0.3}); !errors.Is(err, ErrWeightMismatch) {
		t.Error("expected ErrWeightMismatch")
	}
	if _, err := WeightedMajorityVote([]bool{true}, []float64{2}); err == nil {
		t.Error("expected error for invalid rate")
	}
}

func TestRunWeightedNeverWorseThanPlain(t *testing.T) {
	// The log-odds rule is the Bayes-optimal aggregator for independent
	// votes, so over many tasks its error rate must not exceed plain
	// majority voting's beyond sampling noise.
	rates := []float64{0.05, 0.3, 0.3, 0.45, 0.45}
	const tasks = 200000
	plain, err := NewSimulator(randx.New(21)).Run(rates, tasks)
	if err != nil {
		t.Fatal(err)
	}
	weighted, err := NewSimulator(randx.New(21)).RunWeighted(rates, tasks)
	if err != nil {
		t.Fatal(err)
	}
	slack := 3 * math.Sqrt(plain.ErrorRate()*(1-plain.ErrorRate())/tasks)
	if weighted.ErrorRate() > plain.ErrorRate()+slack {
		t.Errorf("weighted %.5f worse than plain %.5f", weighted.ErrorRate(), plain.ErrorRate())
	}
	// And on this heterogeneous jury it should be strictly better by a
	// visible margin: the expert dominates.
	analyticPlain, err := jer.DP(rates)
	if err != nil {
		t.Fatal(err)
	}
	if weighted.ErrorRate() > analyticPlain {
		t.Errorf("weighted %.5f did not beat the plain-MV analytic JER %.5f",
			weighted.ErrorRate(), analyticPlain)
	}
}

func TestRunWeightedValidation(t *testing.T) {
	sim := NewSimulator(randx.New(1))
	if _, err := sim.RunWeighted(nil, 5); !errors.Is(err, ErrEmptyVoting) {
		t.Error("expected ErrEmptyVoting")
	}
	if _, err := sim.RunWeighted([]float64{0.5}, 0); err == nil {
		t.Error("expected error for zero tasks")
	}
	if _, err := sim.RunWeighted([]float64{-1}, 5); err == nil {
		t.Error("expected error for bad rates")
	}
}
