package jury

import (
	"context"

	"juryselect/internal/core"
	"juryselect/internal/engine"
)

// BatchOptions configures the concurrent batch-evaluation engine behind
// EvaluateAll and the SelectParallel* solvers. The zero value selects
// sensible defaults.
type BatchOptions struct {
	// Workers bounds the number of concurrent JER evaluations; zero or
	// negative selects runtime.GOMAXPROCS(0).
	Workers int
	// CacheSize bounds the engine's JER memo (entries, LRU-evicted). Zero
	// selects the engine default; negative disables memoization.
	CacheSize int
	// CacheMinJurySize is the smallest jury the memo serves: below it the
	// engine recomputes directly, because the O(n²) DP on a tiny jury is
	// cheaper than a memo lookup. Zero selects the engine default
	// (currently 16); negative memoizes every size.
	CacheMinJurySize int
}

// Result is the outcome of evaluating one jury in a batch. Index is the
// jury's position in the input slice; results are always returned in
// input order regardless of scheduling, so Results[i].Index == i.
type Result struct {
	Index int
	JER   float64
	Err   error
}

// Engine is a long-lived concurrent JER evaluator: a bounded worker pool
// plus a sharded LRU memo keyed on an order-invariant hash of the jury's
// error-rate multiset, so any jury — in any member order, from any caller
// — is computed exactly once while cached, and a warm hit costs one hash
// pass and one shard-lock acquisition. Workers hold reusable JER kernels,
// so steady-state batches do not allocate per jury. Construct one per
// service and share it across requests; it is safe for concurrent use.
type Engine struct {
	eng *engine.Engine
}

// NewEngine returns an Engine with the given options.
func NewEngine(opts BatchOptions) *Engine {
	return &Engine{eng: engine.New(engine.Options{
		Workers:          opts.Workers,
		CacheSize:        opts.CacheSize,
		CacheMinJurySize: opts.CacheMinJurySize,
	})}
}

// Workers returns the engine's concurrency bound.
func (e *Engine) Workers() int { return e.eng.Workers() }

// CacheStats returns the number of exact JER computations performed and
// the number of requests served from the memo since construction.
func (e *Engine) CacheStats() (evaluations, hits int64) {
	st := e.eng.Stats()
	return st.Evaluations, st.CacheHits
}

// EngineStats is a snapshot of the engine's counters, the observability
// surface a serving layer exports (e.g. juryd's /metrics).
type EngineStats struct {
	// Evaluations counts exact JER computations actually performed.
	Evaluations int64
	// CacheHits counts requests served from the memo, including joins of
	// an identical in-flight computation.
	CacheHits int64
	// Inflight is the number of evaluation requests (JER calls and
	// EvaluateAll batches) executing at the snapshot moment.
	Inflight int64
}

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() EngineStats {
	st := e.eng.Stats()
	return EngineStats{Evaluations: st.Evaluations, CacheHits: st.CacheHits, Inflight: st.Inflight}
}

// JER returns the exact Jury Error Rate of one jury, served from the memo
// when its error-rate multiset has been evaluated before.
func (e *Engine) JER(errorRates []float64) (float64, error) {
	return e.eng.Evaluate(errorRates)
}

// JERContext is JER with the cancellation semantics EvaluateAll documents:
// a context that is already done returns ctx.Err() without starting the
// evaluation; a computation already running completes normally (JER
// kernels are not interruptible mid-flight). Single-evaluation callers on
// a request path — an HTTP handler with a per-request deadline — get the
// same contract as batch callers.
func (e *Engine) JERContext(ctx context.Context, errorRates []float64) (float64, error) {
	return e.eng.EvaluateContext(ctx, errorRates)
}

// EvaluateAll computes the exact JER of every jury concurrently and
// returns one Result per jury in input order, for every worker count.
// Juries computed directly are byte-identical to a serial JER loop over
// the same member order; memo-served juries (CacheMinJurySize and up,
// cache enabled) are evaluated in canonical sorted order, making the
// value a pure function of the jury's error-rate multiset — byte-stable
// across member orders, schedules and runs. When ctx is cancelled,
// juries not yet claimed carry ctx.Err(); the slice is always fully
// populated.
func (e *Engine) EvaluateAll(ctx context.Context, juries [][]Juror) []Result {
	rateSets := make([][]float64, len(juries))
	for i, j := range juries {
		rates := make([]float64, len(j))
		for k, juror := range j {
			rates[k] = juror.ErrorRate
		}
		rateSets[i] = rates
	}
	return e.EvaluateAllRates(ctx, rateSets)
}

// EvaluateAllRates is EvaluateAll for callers that already hold plain
// error-rate slices.
func (e *Engine) EvaluateAllRates(ctx context.Context, rateSets [][]float64) []Result {
	raw := e.eng.EvaluateAll(ctx, rateSets)
	out := make([]Result, len(raw))
	for i, r := range raw {
		out[i] = Result{Index: r.Index, JER: r.JER, Err: r.Err}
	}
	return out
}

// SelectAltruistic solves JSP under the Altruism model like the
// package-level SelectAltruistic, but evaluates the odd sorted-prefix
// juries (Lemma 3) concurrently on the engine's worker pool. The returned
// jury minimizes the exact JER; ties resolve to the smallest jury, as in
// Algorithm 3's sequential scan.
func (e *Engine) SelectAltruistic(candidates []Juror) (Selection, error) {
	if err := core.ValidateCandidates(candidates); err != nil {
		return Selection{}, err
	}
	sorted := core.SortedByErrorRate(candidates)
	rates := make([]float64, len(sorted))
	for i, j := range sorted {
		rates[i] = j.ErrorRate
	}
	var prefixes [][]float64
	for n := 1; n <= len(rates); n += 2 {
		prefixes = append(prefixes, rates[:n])
	}
	results := e.EvaluateAllRates(context.Background(), prefixes)
	best := Selection{JER: 2}
	bestN := 0
	for i, r := range results {
		if r.Err != nil {
			return Selection{}, r.Err
		}
		best.Evaluations++
		if r.JER < best.JER {
			best.JER = r.JER
			bestN = 2*i + 1
		}
	}
	best.Jurors = append([]Juror(nil), sorted[:bestN]...)
	for _, j := range best.Jurors {
		best.Cost += j.Cost
	}
	return best, nil
}

// SelectAltruisticSnapshot solves JSP under the Altruism model over a
// candidate snapshot that is already validated and sorted ascending by
// error rate — e.g. an immutable juror-pool snapshot a service holds
// behind an atomic pointer. It skips re-validation and re-sorting, scans
// the slice read-only (the snapshot can be shared by concurrent
// requests), and honours ctx between prefix sizes, so a per-request
// deadline bounds the scan. The sweep maintains the wrong-vote
// distribution incrementally (O(N²) total), the fastest altruistic path
// on any core count; the result is identical to SelectAltruistic on the
// same candidates.
func (e *Engine) SelectAltruisticSnapshot(ctx context.Context, sorted []Juror) (Selection, error) {
	return core.SelectAltr(sorted, core.AltrOptions{
		Incremental: true,
		Presorted:   true,
		Ctx:         ctx,
	})
}

// SelectBudgetedContext is SelectBudgeted with cancellation: the greedy's
// JER admission checks run through the engine memo and poll ctx, so a
// per-request deadline bounds the scan. A check already in flight
// completes normally.
func (e *Engine) SelectBudgetedContext(ctx context.Context, candidates []Juror, budget float64) (Selection, error) {
	return core.SelectPay(candidates, core.PayOptions{
		Budget: budget,
		Evaluate: func(rates []float64) (float64, error) {
			return e.eng.EvaluateContext(ctx, rates)
		},
	})
}

// SelectExact returns the true optimum under the given budget like the
// package-level SelectExact, sharding the exponential enumeration across
// the engine's worker pool. The result is bit-for-bit identical for every
// worker count.
func (e *Engine) SelectExact(candidates []Juror, budget float64) (Selection, error) {
	return core.SelectOptParallel(candidates, budget, e.eng.Workers())
}

// SelectExactContext is SelectExact with cancellation: enumeration
// workers poll ctx between shards, so a per-request deadline bounds the
// exponential scan (at most a few milliseconds of overshoot per worker).
func (e *Engine) SelectExactContext(ctx context.Context, candidates []Juror, budget float64) (Selection, error) {
	return core.SelectOptParallelCtx(ctx, candidates, budget, e.eng.Workers())
}

// SelectBudgeted runs the PayALG greedy like the package-level
// SelectBudgeted with the engine's memo fronting the admission checks:
// across a budget sweep (or any workload that revisits sub-juries) each
// distinct error-rate multiset is computed once. The greedy itself is
// inherently sequential, so the benefit is the cache, not parallelism.
func (e *Engine) SelectBudgeted(candidates []Juror, budget float64) (Selection, error) {
	return core.SelectPay(candidates, core.PayOptions{
		Budget:   budget,
		Evaluate: e.eng.Evaluate,
	})
}

// EvaluateAll computes the exact JER of every jury concurrently with a
// fresh default engine. For repeated batches construct an Engine once so
// the memo cache carries across calls.
func EvaluateAll(ctx context.Context, juries [][]Juror) []Result {
	return NewEngine(BatchOptions{}).EvaluateAll(ctx, juries)
}

// EvaluateAllOpts is EvaluateAll with explicit options.
func EvaluateAllOpts(ctx context.Context, juries [][]Juror, opts BatchOptions) []Result {
	return NewEngine(opts).EvaluateAll(ctx, juries)
}

// SelectParallelAltruistic is SelectAltruistic with the per-size JER
// evaluations of Algorithm 3 sharded across a worker pool. Prefix juries
// are all distinct, so the memo is disabled for the one-shot call.
func SelectParallelAltruistic(candidates []Juror, opts BatchOptions) (Selection, error) {
	opts.CacheSize = -1
	return NewEngine(opts).SelectAltruistic(candidates)
}

// SelectParallelExact is SelectExact with the subset enumeration sharded
// across a worker pool: the include/exclude choices for a fixed candidate
// prefix define independent shards, each enumerated with its own
// incrementally maintained wrong-vote distribution. Results are
// bit-for-bit identical across worker counts.
func SelectParallelExact(candidates []Juror, budget float64, opts BatchOptions) (Selection, error) {
	return core.SelectOptParallel(candidates, budget, opts.Workers)
}

// SelectParallelBudgeted is SelectBudgeted with an engine memo fronting
// the greedy's JER admission checks. One-shot calls gain little — share
// an Engine (Engine.SelectBudgeted) across a budget sweep to reuse the
// cache.
func SelectParallelBudgeted(candidates []Juror, budget float64, opts BatchOptions) (Selection, error) {
	return NewEngine(opts).SelectBudgeted(candidates, budget)
}
