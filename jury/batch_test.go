package jury_test

import (
	"context"
	"math"
	"testing"

	"juryselect/internal/core"
	"juryselect/internal/jer"
	"juryselect/internal/randx"
	"juryselect/jury"
)

func batchJuries(n, size int, seed int64) [][]jury.Juror {
	src := randx.New(seed)
	out := make([][]jury.Juror, n)
	for i := range out {
		rates := src.ErrorRates(size, 0.3, 0.15)
		j := make([]jury.Juror, size)
		for k := range j {
			j[k] = jury.Juror{ErrorRate: rates[k]}
		}
		out[i] = j
	}
	return out
}

// TestEvaluateAllByteIdenticalToSerial is the engine's core contract: the
// concurrent batch returns, in input order, exactly the values a serial
// jury.JER loop produces — byte-identical, for every worker count. Run
// with -race this also exercises the worker pool for data races.
func TestEvaluateAllByteIdenticalToSerial(t *testing.T) {
	juries := batchJuries(300, 11, 5)
	for _, workers := range []int{1, 2, 7, 16} {
		res := jury.EvaluateAllOpts(context.Background(), juries, jury.BatchOptions{Workers: workers})
		if len(res) != len(juries) {
			t.Fatalf("workers=%d: %d results for %d juries", workers, len(res), len(juries))
		}
		for i, r := range res {
			if r.Err != nil {
				t.Fatalf("workers=%d jury %d: %v", workers, i, r.Err)
			}
			if r.Index != i {
				t.Fatalf("workers=%d: result %d carries index %d", workers, i, r.Index)
			}
			rates := make([]float64, len(juries[i]))
			for k, j := range juries[i] {
				rates[k] = j.ErrorRate
			}
			want, err := jury.JER(rates)
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(r.JER) != math.Float64bits(want) {
				t.Fatalf("workers=%d jury %d: batch %v != serial %v", workers, i, r.JER, want)
			}
		}
	}
}

// TestEngineCacheAcrossCalls asserts a shared engine memoizes juries
// across batches and across member orderings.
func TestEngineCacheAcrossCalls(t *testing.T) {
	e := jury.NewEngine(jury.BatchOptions{Workers: 4})
	juries := batchJuries(50, 21, 8) // above the memo's small-jury bypass
	ctx := context.Background()
	if res := e.EvaluateAll(ctx, juries); res[0].Err != nil {
		t.Fatal(res[0].Err)
	}
	evalsAfterFirst, _ := e.CacheStats()
	if res := e.EvaluateAll(ctx, juries); res[0].Err != nil {
		t.Fatal(res[0].Err)
	}
	evals, hits := e.CacheStats()
	if evals != evalsAfterFirst {
		t.Fatalf("second batch recomputed: %d evaluations, want %d", evals, evalsAfterFirst)
	}
	if hits < int64(len(juries)) {
		t.Fatalf("only %d cache hits for a fully repeated batch of %d", hits, len(juries))
	}
}

// TestSelectParallelAltruisticMatchesFaithful compares against the
// paper-faithful serial Algorithm 3 with the same evaluator: the parallel
// variant evaluates identical prefix slices, so values and the selected
// jury must match exactly.
func TestSelectParallelAltruisticMatchesFaithful(t *testing.T) {
	src := randx.New(21)
	rates := src.ErrorRates(201, 0.35, 0.12)
	cands := make([]jury.Juror, len(rates))
	for i := range cands {
		cands[i] = jury.Juror{ID: string(rune('a'+i%26)) + string(rune('0'+i/26)), ErrorRate: rates[i]}
	}
	serial, err := core.SelectAltr(cands, core.AltrOptions{Algorithm: jer.Auto})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4, 0} {
		par, err := jury.SelectParallelAltruistic(cands, jury.BatchOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(par.JER) != math.Float64bits(serial.JER) {
			t.Fatalf("workers=%d: JER %v != faithful %v", workers, par.JER, serial.JER)
		}
		if par.Size() != serial.Size() {
			t.Fatalf("workers=%d: size %d != faithful %d", workers, par.Size(), serial.Size())
		}
		if par.Evaluations != (len(cands)+1)/2 {
			t.Fatalf("workers=%d: %d evaluations, want one per odd prefix", workers, par.Evaluations)
		}
	}
}

// TestSelectParallelExactMatchesSerial compares the sharded enumeration
// against the public SelectExact on the motivation example and a random
// pool.
func TestSelectParallelExactMatchesSerial(t *testing.T) {
	src := randx.New(33)
	rates := src.ErrorRates(16, 0.3, 0.1)
	costs := src.Requirements(16, 0.2, 0.1)
	cands := make([]jury.Juror, 16)
	for i := range cands {
		cands[i] = jury.Juror{ID: string(rune('A' + i)), ErrorRate: rates[i], Cost: costs[i]}
	}
	for _, budget := range []float64{0.5, 1, 3} {
		serial, errS := jury.SelectExact(cands, budget)
		par, errP := jury.SelectParallelExact(cands, budget, jury.BatchOptions{})
		if (errS == nil) != (errP == nil) {
			t.Fatalf("budget %g: %v vs %v", budget, errS, errP)
		}
		if errS != nil {
			continue
		}
		ids1, ids2 := serial.IDs(), par.IDs()
		if len(ids1) != len(ids2) {
			t.Fatalf("budget %g: sizes %d vs %d", budget, len(ids1), len(ids2))
		}
		for i := range ids1 {
			if ids1[i] != ids2[i] {
				t.Fatalf("budget %g: juries %v vs %v", budget, ids1, ids2)
			}
		}
	}
}

// TestSelectParallelBudgetedMatchesSerial asserts the engine-cached
// greedy returns the same jury as the plain SelectBudgeted (memo-served
// evaluations run in canonical member order, so JER values may drift by
// float round-off — never more than ~1 ulp), and that a shared engine
// turns a budget sweep's repeated sub-juries into hits.
func TestSelectParallelBudgetedMatchesSerial(t *testing.T) {
	src := randx.New(44)
	rates := src.ErrorRates(100, 0.3, 0.1)
	costs := src.Requirements(100, 0.3, 0.2)
	cands := make([]jury.Juror, 100)
	for i := range cands {
		cands[i] = jury.Juror{ID: string(rune('a'+i%26)) + string(rune('0'+i/26)), ErrorRate: rates[i], Cost: costs[i]}
	}
	// CacheMinJurySize -1 memoizes every size: the greedy's sub-juries
	// here start small, and the test verifies memo semantics, not tuning.
	e := jury.NewEngine(jury.BatchOptions{CacheMinJurySize: -1})
	for _, budget := range []float64{1, 2, 3} {
		serial, err := jury.SelectBudgeted(cands, budget)
		if err != nil {
			t.Fatal(err)
		}
		cached, err := e.SelectBudgeted(cands, budget)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(serial.JER-cached.JER) > 1e-12*serial.JER || serial.Size() != cached.Size() {
			t.Fatalf("budget %g: %v/%d vs %v/%d", budget,
				serial.JER, serial.Size(), cached.JER, cached.Size())
		}
	}
	if _, hits := e.CacheStats(); hits == 0 {
		t.Fatal("budget sweep produced no cache hits; the memo is not being consulted")
	}
}

// TestEvaluateAllEmptyAndInvalid covers edge inputs through the public
// wrapper.
func TestEvaluateAllEmptyAndInvalid(t *testing.T) {
	if res := jury.EvaluateAll(context.Background(), nil); len(res) != 0 {
		t.Fatalf("nil input produced %d results", len(res))
	}
	res := jury.EvaluateAll(context.Background(), [][]jury.Juror{
		{{ErrorRate: 0.2}},
		{},
	})
	if res[0].Err != nil {
		t.Fatalf("valid jury errored: %v", res[0].Err)
	}
	if res[1].Err == nil {
		t.Fatal("empty jury did not error")
	}
}

// TestJERContext: same value as JER, and the EvaluateAll cancellation
// contract for single evaluations.
func TestJERContext(t *testing.T) {
	eng := jury.NewEngine(jury.BatchOptions{})
	rates := []float64{0.1, 0.2, 0.3}
	want, err := eng.JER(rates)
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.JERContext(context.Background(), rates)
	if err != nil || got != want {
		t.Fatalf("JERContext = %g/%v, want %g", got, err, want)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.JERContext(ctx, rates); err != context.Canceled {
		t.Fatalf("cancelled JERContext error = %v, want context.Canceled", err)
	}
}

// TestSelectAltruisticSnapshotMatchesSolver: the no-revalidation snapshot
// path selects the same jury at the same JER as the validated solvers.
func TestSelectAltruisticSnapshotMatchesSolver(t *testing.T) {
	for _, n := range []int{1, 2, 9, 40} {
		cands := batchJuries(1, n, int64(100+n))[0]
		for i := range cands {
			cands[i].ID = string(rune('a' + i%26))
		}
		want, err := jury.SelectAltruistic(cands)
		if err != nil {
			t.Fatal(err)
		}
		eng := jury.NewEngine(jury.BatchOptions{})
		got, err := eng.SelectAltruisticSnapshot(context.Background(), core.SortedByErrorRate(cands))
		if err != nil {
			t.Fatal(err)
		}
		if got.JER != want.JER || got.Size() != want.Size() {
			t.Errorf("n=%d: snapshot %g/%d vs solver %g/%d",
				n, got.JER, got.Size(), want.JER, want.Size())
		}
	}
}

func TestSelectAltruisticSnapshotCancellation(t *testing.T) {
	eng := jury.NewEngine(jury.BatchOptions{})
	sorted := core.SortedByErrorRate(batchJuries(1, 31, 9)[0])
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.SelectAltruisticSnapshot(ctx, sorted); err != context.Canceled {
		t.Fatalf("cancelled snapshot selection error = %v", err)
	}
	if _, err := eng.SelectAltruisticSnapshot(context.Background(), nil); err != jury.ErrNoCandidates {
		t.Fatalf("empty snapshot error = %v", err)
	}
}

// TestSelectBudgetedContextMatchesSerial: the ctx-aware budgeted greedy
// agrees with the plain solver and honours cancellation.
func TestSelectBudgetedContextMatchesSerial(t *testing.T) {
	src := randx.New(21)
	cands := make([]jury.Juror, 41)
	rates := src.ErrorRates(len(cands), 0.3, 0.15)
	for i := range cands {
		cands[i] = jury.Juror{ID: string(rune('A' + i%26)), ErrorRate: rates[i], Cost: 0.05 + 0.1*float64(i%5)}
	}
	const budget = 1.2
	want, err := jury.SelectBudgeted(cands, budget)
	if err != nil {
		t.Fatal(err)
	}
	eng := jury.NewEngine(jury.BatchOptions{})
	got, err := eng.SelectBudgetedContext(context.Background(), cands, budget)
	if err != nil {
		t.Fatal(err)
	}
	// The engine memo evaluates in canonical order: values may differ in
	// the last ulp, the selected jury only on sub-round-off ties.
	if got.Size() != want.Size() || math.Abs(got.JER-want.JER) > 1e-12 {
		t.Errorf("context greedy %g/%d vs serial %g/%d", got.JER, got.Size(), want.JER, want.Size())
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.SelectBudgetedContext(ctx, cands, budget); err != context.Canceled {
		t.Fatalf("cancelled budgeted selection error = %v", err)
	}
}

// TestEngineStatsSurface: Stats mirrors CacheStats and settles to zero
// inflight.
func TestEngineStatsSurface(t *testing.T) {
	eng := jury.NewEngine(jury.BatchOptions{CacheMinJurySize: -1})
	rates := []float64{0.1, 0.2, 0.3, 0.25, 0.15, 0.35, 0.12, 0.22, 0.28, 0.31, 0.19, 0.24, 0.26, 0.14, 0.33, 0.29, 0.21}
	if _, err := eng.JER(rates); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.JER(rates); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	evals, hits := eng.CacheStats()
	if st.Evaluations != evals || st.CacheHits != hits {
		t.Errorf("Stats %+v disagrees with CacheStats %d/%d", st, evals, hits)
	}
	if st.Evaluations != 1 || st.CacheHits != 1 {
		t.Errorf("stats = %+v, want 1 evaluation + 1 hit", st)
	}
	if st.Inflight != 0 {
		t.Errorf("idle inflight = %d", st.Inflight)
	}
}

// TestSelectExactContext: same optimum as SelectExact, and cancellation
// aborts the enumeration with ctx.Err().
func TestSelectExactContext(t *testing.T) {
	cands := batchJuries(1, 14, 77)[0]
	for i := range cands {
		cands[i].ID = string(rune('A' + i))
		cands[i].Cost = 0.1 + 0.05*float64(i%4)
	}
	eng := jury.NewEngine(jury.BatchOptions{})
	want, err := eng.SelectExact(cands, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.SelectExactContext(context.Background(), cands, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if got.JER != want.JER || got.Size() != want.Size() {
		t.Errorf("context exact %g/%d vs plain %g/%d", got.JER, got.Size(), want.JER, want.Size())
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.SelectExactContext(ctx, cands, 1.0); err != context.Canceled {
		t.Fatalf("cancelled exact enumeration error = %v", err)
	}
}
