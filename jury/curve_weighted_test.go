package jury_test

import (
	"errors"
	"math"
	"testing"

	"juryselect/jury"
)

func TestJERCurveMatchesSelection(t *testing.T) {
	cands := figure1()
	curve, err := jury.JERCurve(cands)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 4 { // sizes 1, 3, 5, 7
		t.Fatalf("curve has %d points", len(curve))
	}
	sel, err := jury.SelectAltruistic(cands)
	if err != nil {
		t.Fatal(err)
	}
	best := curve[0]
	for _, p := range curve[1:] {
		if p.JER < best.JER {
			best = p
		}
	}
	if best.Size != sel.Size() || math.Abs(best.JER-sel.JER) > 1e-12 {
		t.Fatalf("curve minimum (%d, %g) disagrees with selection (%d, %g)",
			best.Size, best.JER, sel.Size(), sel.JER)
	}
}

func TestJERCurveValidation(t *testing.T) {
	if _, err := jury.JERCurve(nil); !errors.Is(err, jury.ErrNoCandidates) {
		t.Errorf("err = %v, want ErrNoCandidates", err)
	}
}

func TestWeightedMajorityVotePublic(t *testing.T) {
	// Expert outweighs two mediocre dissenters.
	d, err := jury.WeightedMajorityVote([]bool{true, false, false}, []float64{0.01, 0.45, 0.45})
	if err != nil {
		t.Fatal(err)
	}
	if d != jury.Yes {
		t.Errorf("decision = %v, want Yes", d)
	}
	w, err := jury.VoteWeights([]float64{0.1, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if !(w[0] > 0 && w[1] < 0) {
		t.Errorf("weights = %v, want (+, -)", w)
	}
}

func TestSimulateWeightedBeatsPlainOnHeterogeneousJury(t *testing.T) {
	rates := []float64{0.05, 0.45, 0.45, 0.45, 0.45}
	plain, err := jury.Simulate(rates, 100000, 3)
	if err != nil {
		t.Fatal(err)
	}
	weighted, err := jury.SimulateWeighted(rates, 100000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if weighted.ErrorRate() >= plain.ErrorRate() {
		t.Errorf("weighted %.4f not better than plain %.4f on expert+crowd jury",
			weighted.ErrorRate(), plain.ErrorRate())
	}
}
