package jury_test

import (
	"context"
	"fmt"

	"juryselect/jury"
)

// EvaluateAll scores many candidate juries at once: the exact JER of each
// jury is computed on a bounded worker pool, with results returned in
// input order and values byte-identical to evaluating each jury serially.
// The juries here are rows of the paper's Table 2.
func ExampleEvaluateAll() {
	juries := [][]jury.Juror{
		{{ID: "A", ErrorRate: 0.1}, {ID: "B", ErrorRate: 0.2}, {ID: "C", ErrorRate: 0.2}},
		{{ID: "C", ErrorRate: 0.2}, {ID: "D", ErrorRate: 0.3}, {ID: "E", ErrorRate: 0.3}},
		{{ID: "A", ErrorRate: 0.1}, {ID: "B", ErrorRate: 0.2}, {ID: "C", ErrorRate: 0.2},
			{ID: "D", ErrorRate: 0.3}, {ID: "E", ErrorRate: 0.3}},
	}
	for _, r := range jury.EvaluateAll(context.Background(), juries) {
		fmt.Printf("jury %d: JER %.5f\n", r.Index, r.JER)
	}
	// Output:
	// jury 0: JER 0.07200
	// jury 1: JER 0.17400
	// jury 2: JER 0.07036
}
