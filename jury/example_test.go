package jury_test

import (
	"fmt"

	"juryselect/jury"
)

// The motivation example of the paper: the best jury over seven candidate
// jurors is the size-5 jury {A,B,C,D,E}, beating both the single best
// juror and the full crowd.
func ExampleSelectAltruistic() {
	candidates := []jury.Juror{
		{ID: "A", ErrorRate: 0.1}, {ID: "B", ErrorRate: 0.2},
		{ID: "C", ErrorRate: 0.2}, {ID: "D", ErrorRate: 0.3},
		{ID: "E", ErrorRate: 0.3}, {ID: "F", ErrorRate: 0.4},
		{ID: "G", ErrorRate: 0.4},
	}
	sel, err := jury.SelectAltruistic(candidates)
	if err != nil {
		panic(err)
	}
	fmt.Printf("size=%d jer=%.5f\n", sel.Size(), sel.JER)
	// Output: size=5 jer=0.07036
}

// JER computes the exact probability that majority voting goes wrong.
func ExampleJER() {
	v, err := jury.JER([]float64{0.2, 0.3, 0.3})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%.3f\n", v)
	// Output: 0.174
}

// With a budget, jurors' payment requirements constrain the jury: the
// greedy seeds with the best quality-for-money candidate and grows by
// pairs while the budget allows and the error rate improves.
func ExampleSelectBudgeted() {
	candidates := []jury.Juror{
		{ID: "a", ErrorRate: 0.20, Cost: 0.10},
		{ID: "b", ErrorRate: 0.25, Cost: 0.15},
		{ID: "c", ErrorRate: 0.25, Cost: 0.15},
		{ID: "d", ErrorRate: 0.10, Cost: 0.80}, // too expensive to pair
	}
	sel, err := jury.SelectBudgeted(candidates, 0.5)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%v cost=%.2f\n", sel.IDs(), sel.Cost)
	// Output: [a b c] cost=0.40
}

// MajorityVote aggregates a voting into a decision.
func ExampleMajorityVote() {
	d, err := jury.MajorityVote([]bool{true, true, false})
	if err != nil {
		panic(err)
	}
	fmt.Println(d)
	// Output: yes
}

// Select dispatches on the crowdsourcing model.
func ExampleSelect() {
	candidates := []jury.Juror{
		{ID: "x", ErrorRate: 0.2, Cost: 0.3},
		{ID: "y", ErrorRate: 0.3, Cost: 0.3},
		{ID: "z", ErrorRate: 0.3, Cost: 0.3},
	}
	altr, _ := jury.Select(candidates, jury.Altruism)
	pay, _ := jury.Select(candidates, jury.PayAsYouGo(0.35))
	fmt.Printf("altruism=%d paid=%d\n", altr.Size(), pay.Size())
	// Output: altruism=3 paid=1
}
