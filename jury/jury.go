// Package jury is the public API of the jury-selection library: selecting a
// subset of crowd workers ("jurors") on a micro-blog service so that their
// Majority Voting answer to a binary decision-making task has the lowest
// possible probability of being wrong (the Jury Error Rate, JER).
//
// It implements "Whom to Ask? Jury Selection for Decision Making Tasks on
// Micro-blog Services" (Cao, She, Tong, Chen; PVLDB 5(11), 2012):
//
//   - JER computes the exact failure probability of a jury under Majority
//     Voting (Definition 6), via dynamic programming (Algorithm 1) or
//     divide-and-conquer FFT convolution (Algorithm 2).
//   - SelectAltruistic solves the Jury Selection Problem exactly under the
//     Altruism model (Algorithm 3, "AltrALG").
//   - SelectBudgeted runs the greedy heuristic for the NP-hard budgeted
//     model (Algorithm 4, "PayALG").
//   - SelectExact enumerates the true optimum for small candidate sets,
//     the ground truth used by the paper's effectiveness experiments.
//   - MajorityVote and Simulate provide the voting scheme itself and a
//     task simulator for empirical validation.
//
// A quick start:
//
//	cands := []jury.Juror{
//		{ID: "A", ErrorRate: 0.1}, {ID: "B", ErrorRate: 0.2},
//		{ID: "C", ErrorRate: 0.2}, {ID: "D", ErrorRate: 0.3},
//		{ID: "E", ErrorRate: 0.3},
//	}
//	sel, err := jury.SelectAltruistic(cands)
//	// sel.Jurors is the optimal jury, sel.JER its exact error rate.
//
// Candidate attributes (ErrorRate, Cost) are usually estimated from
// micro-blog data; package microblog implements the paper's estimation
// pipeline (retweet graph + HITS/PageRank + normalization).
package jury

import (
	"sort"

	"juryselect/internal/core"
	"juryselect/internal/jer"
	"juryselect/internal/randx"
	"juryselect/internal/voting"
)

// Juror is one candidate worker: an identifier, an individual error rate
// ε ∈ (0,1) (the probability of voting against the latent truth), and a
// payment requirement used by the budgeted model.
type Juror = core.Juror

// Selection is the outcome of a selection run: the chosen jurors, their
// exact JER, total cost, and solver counters.
type Selection = core.Selection

// Model decides which juries are allowed (Definitions 7 and 8).
type Model = core.Model

// Altruism is the Altruism Jurors Model: every jury is allowed and jurors
// require no payment (Definition 7).
var Altruism Model = core.AltrM{}

// PayAsYouGo returns the Pay-as-you-go Model with the given budget
// (Definition 8): a jury is allowed when its total payment requirement does
// not exceed the budget.
func PayAsYouGo(budget float64) Model { return core.PayM{Budget: budget} }

// Errors re-exported for callers that branch on failure modes.
var (
	// ErrNoCandidates reports an empty candidate set.
	ErrNoCandidates = core.ErrNoCandidates
	// ErrNoFeasibleJury reports that no candidate fits the budget.
	ErrNoFeasibleJury = core.ErrNoFeasibleJury
	// ErrEmptyJury reports a JER request over zero jurors.
	ErrEmptyJury = jer.ErrEmptyJury
)

// JER returns the exact Jury Error Rate of a jury with the given individual
// error rates: the probability that at least half of the jurors vote
// wrongly under Majority Voting. The evaluator is chosen automatically
// (dynamic programming for small juries, FFT convolution for large ones).
func JER(errorRates []float64) (float64, error) {
	return jer.Compute(errorRates, jer.Auto)
}

// JERDistribution returns the full probability mass function of the number
// of wrong voters; entry k is the probability that exactly k jurors err.
// The rates must lie in (0,1).
func JERDistribution(errorRates []float64) ([]float64, error) {
	if _, err := jer.Compute(errorRates, jer.Auto); err != nil {
		return nil, err
	}
	return jer.Distribution(errorRates), nil
}

// JERLowerBound returns the O(n) Paley–Zygmund lower bound on the JER
// (Lemma 2) and whether the bound is applicable (it requires the expected
// number of wrong voters to exceed the majority threshold).
func JERLowerBound(errorRates []float64) (bound float64, usable bool) {
	return jer.LowerBound(errorRates)
}

// SelectAltruistic solves the Jury Selection Problem exactly under the
// Altruism model: it returns the odd-size jury with globally minimal JER.
// The candidates' Cost fields are ignored.
func SelectAltruistic(candidates []Juror) (Selection, error) {
	return core.SelectAltr(candidates, core.AltrOptions{Incremental: true})
}

// SelectBudgeted runs the PayALG greedy heuristic: it returns an odd-size
// jury whose total cost respects the budget, grown in pairs sorted by the
// ε·cost product and admitted only when the JER improves. The underlying
// problem is NP-hard, so the result may be suboptimal; compare with
// SelectExact on small inputs.
func SelectBudgeted(candidates []Juror, budget float64) (Selection, error) {
	return core.SelectPay(candidates, core.PayOptions{Budget: budget})
}

// SelectExact enumerates every allowed jury and returns the true optimum.
// It is exponential in len(candidates) and rejects sets larger than
// MaxExactCandidates.
func SelectExact(candidates []Juror, budget float64) (Selection, error) {
	return core.SelectOpt(candidates, budget)
}

// MaxExactCandidates is the largest candidate set SelectExact accepts.
const MaxExactCandidates = core.MaxOptCandidates

// Select dispatches on the model: Altruism routes to SelectAltruistic and
// PayAsYouGo to SelectBudgeted.
func Select(candidates []Juror, m Model) (Selection, error) {
	switch mm := m.(type) {
	case core.AltrM:
		return SelectAltruistic(candidates)
	case core.PayM:
		return SelectBudgeted(candidates, mm.Budget)
	default:
		// Unknown models fall back to the altruistic solver filtered by
		// Allowed on the result; the two built-in models cover the paper.
		sel, err := SelectAltruistic(candidates)
		if err != nil {
			return Selection{}, err
		}
		if !m.Allowed(sel.Cost) {
			return Selection{}, ErrNoFeasibleJury
		}
		return sel, nil
	}
}

// Decision is a Majority Voting outcome (yes / no / tie).
type Decision = voting.Decision

// Decision values.
const (
	No  = voting.No
	Yes = voting.Yes
	Tie = voting.Tie
)

// MajorityVote aggregates a voting: Yes when a strict majority of votes is
// true, No when a strict majority is false, Tie otherwise (possible only
// for even votings, which the paper's model excludes).
func MajorityVote(votes []bool) (Decision, error) {
	return voting.MajorityVote(votes)
}

// Outcome summarizes a simulated batch of decision tasks.
type Outcome = voting.Outcome

// Simulate runs `tasks` independent simulated decision tasks for a jury
// with the given error rates and reports how often the majority decision
// was wrong. As tasks grows, Outcome.ErrorRate converges to JER(errorRates)
// — the library's model-consistency check, also exercised by the tests.
func Simulate(errorRates []float64, tasks int, seed int64) (Outcome, error) {
	sim := voting.NewSimulator(randx.New(seed))
	return sim.Run(errorRates, tasks)
}

// CurvePoint is the exact JER of one odd jury size along the sorted-
// candidate prefix curve.
type CurvePoint = jer.CurvePoint

// JERCurve returns the exact JER of every odd-size jury formed from the
// most reliable candidates: point k is the JER of the best jury of size
// 2k+1 (Lemma 3 guarantees prefixes of the ε-sorted order are optimal per
// size). The curve exposes the size-vs-quality trade-off that
// SelectAltruistic optimizes over — useful for requesters who want to see
// how flat the optimum is before spending invitations.
func JERCurve(candidates []Juror) ([]CurvePoint, error) {
	if err := core.ValidateCandidates(candidates); err != nil {
		return nil, err
	}
	rates := make([]float64, len(candidates))
	for i, c := range candidates {
		rates[i] = c.ErrorRate
	}
	sort.Float64s(rates)
	return jer.PrefixCurve(rates)
}
