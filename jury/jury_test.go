package jury_test

import (
	"errors"
	"math"
	"testing"

	"juryselect/jury"
)

func figure1() []jury.Juror {
	return []jury.Juror{
		{ID: "A", ErrorRate: 0.1, Cost: 0.15},
		{ID: "B", ErrorRate: 0.2, Cost: 0.2},
		{ID: "C", ErrorRate: 0.2, Cost: 0.25},
		{ID: "D", ErrorRate: 0.3, Cost: 0.4},
		{ID: "E", ErrorRate: 0.3, Cost: 0.65},
		{ID: "F", ErrorRate: 0.4, Cost: 0.05},
		{ID: "G", ErrorRate: 0.4, Cost: 0.05},
	}
}

func TestJERMotivationValues(t *testing.T) {
	cases := []struct {
		rates []float64
		want  float64
	}{
		{[]float64{0.2, 0.3, 0.3}, 0.174},
		{[]float64{0.1, 0.2, 0.2}, 0.072},
		{[]float64{0.1, 0.2, 0.2, 0.3, 0.3}, 0.07036},
	}
	for _, tc := range cases {
		got, err := jury.JER(tc.rates)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("JER(%v) = %.6f, want %.6f", tc.rates, got, tc.want)
		}
	}
}

func TestJERErrors(t *testing.T) {
	if _, err := jury.JER(nil); !errors.Is(err, jury.ErrEmptyJury) {
		t.Errorf("err = %v, want ErrEmptyJury", err)
	}
	if _, err := jury.JER([]float64{1.5}); err == nil {
		t.Error("expected error for invalid rate")
	}
}

func TestJERDistribution(t *testing.T) {
	pmf, err := jury.JERDistribution([]float64{0.2, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.8 * 0.7, 0.2*0.7 + 0.8*0.3, 0.2 * 0.3}
	for i := range want {
		if math.Abs(pmf[i]-want[i]) > 1e-12 {
			t.Fatalf("pmf = %v, want %v", pmf, want)
		}
	}
	if _, err := jury.JERDistribution([]float64{2}); err == nil {
		t.Error("expected error for invalid rate")
	}
}

func TestJERLowerBound(t *testing.T) {
	rates := []float64{0.9, 0.9, 0.9}
	bound, usable := jury.JERLowerBound(rates)
	if !usable {
		t.Fatal("bound should be usable for unreliable jury")
	}
	exact, err := jury.JER(rates)
	if err != nil {
		t.Fatal(err)
	}
	if bound > exact {
		t.Errorf("bound %g exceeds exact %g", bound, exact)
	}
}

func TestSelectAltruisticQuickstart(t *testing.T) {
	sel, err := jury.SelectAltruistic(figure1())
	if err != nil {
		t.Fatal(err)
	}
	if sel.Size() != 5 || math.Abs(sel.JER-0.07036) > 1e-9 {
		t.Fatalf("selection = size %d JER %.6f, want 5 / 0.07036", sel.Size(), sel.JER)
	}
}

func TestSelectBudgeted(t *testing.T) {
	sel, err := jury.SelectBudgeted(figure1(), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Cost > 1.0+1e-12 {
		t.Fatalf("cost %g over budget", sel.Cost)
	}
	if _, err := jury.SelectBudgeted(figure1(), -1); err == nil {
		t.Error("expected error for negative budget")
	}
}

func TestSelectExactDominatesGreedy(t *testing.T) {
	cands := figure1()
	exact, err := jury.SelectExact(cands, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := jury.SelectBudgeted(cands, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if exact.JER > greedy.JER+1e-12 {
		t.Errorf("exact %.6f worse than greedy %.6f", exact.JER, greedy.JER)
	}
}

func TestSelectDispatch(t *testing.T) {
	altr, err := jury.Select(figure1(), jury.Altruism)
	if err != nil {
		t.Fatal(err)
	}
	if altr.Size() != 5 {
		t.Errorf("Altruism dispatch size %d, want 5", altr.Size())
	}
	pay, err := jury.Select(figure1(), jury.PayAsYouGo(1.0))
	if err != nil {
		t.Fatal(err)
	}
	if pay.Cost > 1.0+1e-12 {
		t.Errorf("PayAsYouGo dispatch cost %g over budget", pay.Cost)
	}
}

func TestSelectErrors(t *testing.T) {
	if _, err := jury.Select(nil, jury.Altruism); !errors.Is(err, jury.ErrNoCandidates) {
		t.Errorf("err = %v, want ErrNoCandidates", err)
	}
	expensive := []jury.Juror{{ID: "x", ErrorRate: 0.5, Cost: 100}}
	if _, err := jury.Select(expensive, jury.PayAsYouGo(1)); !errors.Is(err, jury.ErrNoFeasibleJury) {
		t.Errorf("err = %v, want ErrNoFeasibleJury", err)
	}
}

func TestMajorityVote(t *testing.T) {
	d, err := jury.MajorityVote([]bool{true, true, false})
	if err != nil || d != jury.Yes {
		t.Fatalf("got %v, %v", d, err)
	}
	d, err = jury.MajorityVote([]bool{true, false})
	if err != nil || d != jury.Tie {
		t.Fatalf("got %v, %v", d, err)
	}
}

func TestSimulateConvergesToJER(t *testing.T) {
	rates := []float64{0.2, 0.3, 0.3}
	want, err := jury.JER(rates)
	if err != nil {
		t.Fatal(err)
	}
	out, err := jury.Simulate(rates, 200000, 42)
	if err != nil {
		t.Fatal(err)
	}
	sigma := math.Sqrt(want * (1 - want) / float64(out.Tasks))
	if math.Abs(out.ErrorRate()-want) > 4*sigma+1e-4 {
		t.Errorf("simulated %g vs analytic %g", out.ErrorRate(), want)
	}
}

func TestMaxExactCandidatesEnforced(t *testing.T) {
	cands := make([]jury.Juror, jury.MaxExactCandidates+1)
	for i := range cands {
		cands[i] = jury.Juror{ErrorRate: 0.5}
	}
	if _, err := jury.SelectExact(cands, 1); err == nil {
		t.Fatal("expected size-limit error")
	}
}
