package jury

import (
	"juryselect/internal/learn"
)

// This file exposes history-based error-rate estimation (package
// internal/learn): the alternative to the micro-blog graph estimation of
// package microblog that the paper's §4 explicitly allows ("any other
// reasonable measures can be smoothly plugged in to our framework").

// Vote is a recorded opinion: VoteYes, VoteNo, or Abstain.
type Vote = learn.Vote

// Vote values.
const (
	// Abstain marks a juror who was not asked or did not reply.
	Abstain = learn.Abstain
	// VoteNo is a negative opinion.
	VoteNo = learn.VoteNo
	// VoteYes is a positive opinion.
	VoteYes = learn.VoteYes
)

// History is a record of past votings: one row of votes per task.
type History = learn.History

// NewHistory returns an empty history tracking the given number of jurors.
func NewHistory(jurors int) (*History, error) { return learn.NewHistory(jurors) }

// LearnFromGold estimates individual error rates by counting disagreements
// with known ground truths (calibration tasks), with Laplace smoothing.
// The result can be assigned directly to Juror.ErrorRate.
func LearnFromGold(h *History, truths []Vote) ([]float64, error) {
	return learn.FromGold(h, truths)
}

// LearnResult is the outcome of unsupervised error-rate estimation.
type LearnResult = learn.EMResult

// Learn estimates individual error rates from voting history alone —
// no ground truth required — using expectation–maximization over the
// binary symmetric-error model (the Dawid–Skene special case the paper
// cites as "Learning from crowds"). Besides the error rates it returns
// per-task posterior truths, usable as soft labels.
func Learn(h *History) (*LearnResult, error) {
	return learn.EM(h, learn.EMOptions{})
}
