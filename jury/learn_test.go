package jury_test

import (
	"math"
	"testing"

	"juryselect/internal/randx"
	"juryselect/jury"
)

// voteHistory simulates votes for jurors with the given error rates.
func voteHistory(t *testing.T, rates []float64, tasks int, seed int64) (*jury.History, []jury.Vote) {
	t.Helper()
	src := randx.New(seed)
	h, err := jury.NewHistory(len(rates))
	if err != nil {
		t.Fatal(err)
	}
	truths := make([]jury.Vote, 0, tasks)
	for task := 0; task < tasks; task++ {
		truth := jury.VoteYes
		if task%2 == 1 {
			truth = jury.VoteNo
		}
		row := make([]jury.Vote, len(rates))
		for i, e := range rates {
			wrong := src.Bernoulli(e)
			if (truth == jury.VoteYes) != wrong {
				row[i] = jury.VoteYes
			} else {
				row[i] = jury.VoteNo
			}
		}
		if err := h.Add(row); err != nil {
			t.Fatal(err)
		}
		truths = append(truths, truth)
	}
	return h, truths
}

func TestLearnEndToEnd(t *testing.T) {
	trueRates := []float64{0.1, 0.2, 0.3, 0.4, 0.25}
	h, _ := voteHistory(t, trueRates, 2500, 5)
	res, err := jury.Learn(h)
	if err != nil {
		t.Fatal(err)
	}
	cands := make([]jury.Juror, len(res.ErrorRates))
	for i, e := range res.ErrorRates {
		cands[i] = jury.Juror{ID: string(rune('a' + i)), ErrorRate: e}
		if math.Abs(e-trueRates[i]) > 0.06 {
			t.Errorf("juror %d: learned ε %.3f vs true %.3f", i, e, trueRates[i])
		}
	}
	// Learned rates must be directly usable by the selector.
	if _, err := jury.SelectAltruistic(cands); err != nil {
		t.Fatalf("selection over learned rates failed: %v", err)
	}
}

func TestLearnFromGoldEndToEnd(t *testing.T) {
	trueRates := []float64{0.15, 0.35}
	h, truths := voteHistory(t, trueRates, 3000, 6)
	rates, err := jury.LearnFromGold(h, truths)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range trueRates {
		if math.Abs(rates[i]-want) > 0.04 {
			t.Errorf("juror %d: gold ε %.3f vs true %.3f", i, rates[i], want)
		}
	}
}

func TestLearnErrorsSurface(t *testing.T) {
	h, err := jury.NewHistory(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := jury.Learn(h); err == nil {
		t.Error("expected error for empty history")
	}
	if _, err := jury.LearnFromGold(h, nil); err == nil {
		t.Error("expected error for empty history")
	}
	if _, err := jury.NewHistory(-1); err == nil {
		t.Error("expected error for negative juror count")
	}
}
