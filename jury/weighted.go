package jury

import (
	"juryselect/internal/randx"
	"juryselect/internal/voting"
)

// This file exposes ε-weighted majority voting, an aggregation upgrade over
// the paper's plain Majority Voting: when individual error rates are known
// (jury selection already assumes they are), weighting each vote by its
// log-odds of correctness log((1-ε)/ε) is the Bayes-optimal aggregation
// rule for independent votes. The ablation-wmv experiment quantifies the
// gap; on heterogeneous juries it is substantial.

// WeightedMajorityVote aggregates votes with log-odds weights derived from
// the voters' error rates. It returns Yes/No by weighted majority and Tie
// on an exact balance. votes[i] must correspond to errorRates[i].
func WeightedMajorityVote(votes []bool, errorRates []float64) (Decision, error) {
	return voting.WeightedMajorityVote(votes, errorRates)
}

// VoteWeights returns the Bayes-optimal log-odds weight of each juror:
// positive for better-than-chance jurors, negative for anti-experts.
func VoteWeights(errorRates []float64) ([]float64, error) {
	return voting.LogOddsWeights(errorRates)
}

// SimulateWeighted runs the same task simulation as Simulate but
// aggregates each voting with WeightedMajorityVote instead of plain
// majority. Comparing the two outcomes on one jury isolates the value of
// ε-aware aggregation.
func SimulateWeighted(errorRates []float64, tasks int, seed int64) (Outcome, error) {
	sim := voting.NewSimulator(randx.New(seed))
	return sim.RunWeighted(errorRates, tasks)
}
