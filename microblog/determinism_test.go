package microblog_test

import (
	"reflect"
	"testing"

	"juryselect/internal/graph"
	"juryselect/internal/twitter"
	"juryselect/microblog"
)

// The closed-loop simulator (internal/simul) builds juror populations from
// SyntheticCorpus and summarises them with graph.ComputeStats; its
// bit-identical-metrics contract requires both to be pure functions of the
// seed. These tests pin that property.

func TestSyntheticCorpusSeedPure(t *testing.T) {
	t1, p1 := microblog.SyntheticCorpus(400, 2500, 99)
	t2, p2 := microblog.SyntheticCorpus(400, 2500, 99)
	if !reflect.DeepEqual(t1, t2) {
		t.Fatal("same seed produced different tweet streams")
	}
	if !reflect.DeepEqual(p1, p2) {
		t.Fatal("same seed produced different profiles")
	}
	// A different seed must not replay the same corpus (the generator
	// actually consumes the seed).
	t3, _ := microblog.SyntheticCorpus(400, 2500, 100)
	if reflect.DeepEqual(t1, t3) {
		t.Fatal("different seeds produced identical corpora")
	}
}

func TestCorpusGraphStatsDeterministic(t *testing.T) {
	build := func(seed int64) graph.Stats {
		tweets, _ := microblog.SyntheticCorpus(300, 2000, seed)
		g := graph.New()
		for _, tw := range tweets {
			for _, pair := range twitter.RetweetPairs(tw) {
				if err := g.AddEdge(pair.From, pair.To); err != nil {
					t.Fatal(err)
				}
			}
		}
		return g.ComputeStats()
	}
	s1, s2 := build(42), build(42)
	if s1 != s2 {
		t.Fatalf("same seed produced different graph stats:\n%+v\n%+v", s1, s2)
	}
	if s1.Nodes == 0 || s1.Edges == 0 {
		t.Fatalf("degenerate corpus graph: %+v", s1)
	}
}

func TestCandidatesDeterministic(t *testing.T) {
	// The full §4 pipeline — corpus, retweet graph, HITS, normalization —
	// is seed-pure end to end: candidate IDs, rates and costs all match.
	run := func() *microblog.Result {
		tweets, profiles := microblog.SyntheticCorpus(300, 2000, 7)
		res, err := microblog.Candidates(tweets, profiles, microblog.Options{TopK: 25})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1, r2 := run(), run()
	if !reflect.DeepEqual(r1.Candidates, r2.Candidates) {
		t.Fatal("same seed produced different candidates")
	}
	if r1.Graph != r2.Graph {
		t.Fatalf("same seed produced different graph stats: %+v vs %+v", r1.Graph, r2.Graph)
	}
}
