package microblog_test

import (
	"fmt"

	"juryselect/microblog"
)

// The full §4 pipeline on a handwritten corpus: parse retweet chains,
// rank users, and estimate jurors.
func ExampleCandidates() {
	tweets := []microblog.Tweet{
		{Author: "alice", Content: "RT @expert: is this rumor true?"},
		{Author: "bob", Content: "RT @expert: earthquake near the coast"},
		{Author: "carol", Content: "RT @alice: RT @expert: a chain"},
	}
	profiles := []microblog.Profile{
		{Name: "expert", AccountAgeDays: 2000},
		{Name: "alice", AccountAgeDays: 500},
	}
	res, err := microblog.Candidates(tweets, profiles, microblog.Options{Ranker: microblog.PageRank})
	if err != nil {
		panic(err)
	}
	fmt.Printf("top=%s edges=%d\n", res.Candidates[0].ID, res.Graph.Edges)
	// Output: top=expert edges=3
}

// RetweetChain extracts the "RT @user" markers of Algorithm 5.
func ExampleRetweetChain() {
	fmt.Println(microblog.RetweetChain("so true RT @bob: RT @carol: original"))
	// Output: [bob carol]
}
