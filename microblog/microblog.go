// Package microblog implements the parameter-estimation pipeline of the
// paper's Section 4: from raw micro-blog ("tweet") records to candidate
// jurors with estimated individual error rates and payment requirements,
// ready for selection with package jury.
//
// The pipeline has four stages, each overridable through Options:
//
//  1. Parse "RT @user" retweet chains out of tweet text (Algorithm 5) and
//     build the directed retweet graph, linking each ordered user pair once.
//  2. Rank users by authority: HITS authority scores (Algorithm 6) or
//     PageRank (Algorithm 7).
//  3. Normalize scores into individual error rates
//     ε = β^(−α(score−min)/(max−min)) with α = β = 10 (§4.1.3).
//  4. Normalize account ages into payment requirements
//     r = (age−min)/(max−min) (§4.2).
//
// For experimentation without a real dataset, SyntheticCorpus generates a
// corpus whose retweet graph has the power-law in-degree profile real
// micro-blog networks exhibit.
package microblog

import (
	"errors"
	"fmt"

	"juryselect/internal/core"
	"juryselect/internal/estimate"
	"juryselect/internal/graph"
	"juryselect/internal/randx"
	"juryselect/internal/rank"
	"juryselect/internal/twitter"
	"juryselect/jury"
)

// Tweet is one micro-blog record: the author and the raw text, which may
// contain "RT @user" markers.
type Tweet = twitter.Record

// Profile carries per-user attributes used for estimation.
type Profile = twitter.Profile

// GraphStats summarises the retweet graph built from a corpus.
type GraphStats = graph.Stats

// Ranker selects the user-ranking algorithm.
type Ranker int

const (
	// HITS uses Kleinberg's authority scores (Algorithm 6); the paper
	// adopts authority as the quality score.
	HITS Ranker = iota
	// PageRank uses PageRank scores (Algorithm 7).
	PageRank
)

// String returns the ranker name.
func (r Ranker) String() string {
	switch r {
	case HITS:
		return "hits"
	case PageRank:
		return "pagerank"
	default:
		return fmt.Sprintf("Ranker(%d)", int(r))
	}
}

// Normalization selects the score→error-rate mapping.
type Normalization = estimate.Strategy

// Normalization strategies.
const (
	// Exponential is the paper's §4.1.3 formula ε = β^(−α(s−min)/(max−min));
	// the default.
	Exponential = estimate.Exponential
	// Linear maps scores to ε linearly; an alternative "reasonable
	// measure" in the sense of §4, spreading reliability evenly instead of
	// concentrating it in the score head.
	Linear = estimate.Linear
)

// Options configures Candidates.
type Options struct {
	// Ranker selects HITS (default) or PageRank.
	Ranker Ranker
	// TopK keeps only the K best-scored users as candidates (the paper
	// keeps 5,000 of 689,050). Zero keeps everyone.
	TopK int
	// Alpha and Beta are the §4.1.3 normalization factors; zero selects
	// the paper's α = β = 10. Only used by the Exponential normalization.
	Alpha, Beta float64
	// Normalization selects the score→ε mapping (default Exponential).
	Normalization Normalization
}

// Result is the pipeline output: candidates ready for jury selection plus
// the intermediate artifacts useful for inspection.
type Result struct {
	// Candidates are the estimated jurors, ordered by descending quality
	// score (i.e. ascending error rate).
	Candidates []jury.Juror
	// Graph summarises the retweet graph the estimates came from.
	Graph GraphStats
	// Scores maps each candidate ID to its raw ranking score.
	Scores map[string]float64
}

// ErrNoRetweets reports a corpus from which no retweet relationship could
// be extracted (the graph is empty, so no user can be ranked).
var ErrNoRetweets = errors.New("microblog: no retweet relationships in corpus")

// Candidates runs the full §4 pipeline over a corpus. Profiles supply
// account ages for requirement estimation; users tweeting or retweeted
// without a profile get age 0 (newest, requirement 0 after normalization).
func Candidates(tweets []Tweet, profiles []Profile, opts Options) (*Result, error) {
	g := graph.New()
	for _, tw := range tweets {
		for _, p := range twitter.RetweetPairs(tw) {
			if err := g.AddEdge(p.From, p.To); err != nil {
				return nil, err
			}
		}
	}
	if g.NumEdges() == 0 {
		return nil, ErrNoRetweets
	}
	var scores []float64
	var err error
	switch opts.Ranker {
	case PageRank:
		scores, err = rank.PageRank(g, rank.PageRankOptions{})
	default:
		scores, _, err = rank.HITS(g, rank.HITSOptions{})
	}
	if err != nil {
		return nil, err
	}
	top := rank.TopK(g, scores, opts.TopK)

	ages := make(map[string]float64, len(profiles))
	for _, p := range profiles {
		ages[p.Name] = p.AccountAgeDays
	}
	scoreVec := make([]float64, len(top))
	ageVec := make([]float64, len(top))
	for i, r := range top {
		scoreVec[i] = r.Score
		ageVec[i] = ages[r.User]
	}
	alpha, beta := opts.Alpha, opts.Beta
	if alpha == 0 {
		alpha = estimate.DefaultAlpha
	}
	if beta == 0 {
		beta = estimate.DefaultBeta
	}
	rates, err := estimate.ErrorRatesWith(opts.Normalization, scoreVec, alpha, beta)
	if err != nil {
		return nil, fmt.Errorf("microblog: normalizing scores: %w", err)
	}
	reqs, _, err := estimate.Requirements(ageVec)
	if err != nil {
		return nil, fmt.Errorf("microblog: normalizing ages: %w", err)
	}

	res := &Result{
		Candidates: make([]jury.Juror, len(top)),
		Graph:      g.ComputeStats(),
		Scores:     make(map[string]float64, len(top)),
	}
	for i, r := range top {
		res.Candidates[i] = core.Juror{ID: r.User, ErrorRate: rates[i], Cost: reqs[i]}
		res.Scores[r.User] = r.Score
	}
	return res, nil
}

// RetweetChain extracts the "RT @user" chain from one tweet's text, in
// order of appearance (Algorithm 5's marker scan).
func RetweetChain(content string) []string { return twitter.RetweetChain(content) }

// SyntheticCorpus generates a deterministic corpus of the given population
// and size whose retweet graph is power-law shaped, plus matching profiles.
// It is the stand-in for the paper's two-day Twitter sample; see DESIGN.md.
func SyntheticCorpus(users, tweets int, seed int64) ([]Tweet, []Profile) {
	c := twitter.Generate(twitter.GeneratorConfig{Users: users, Tweets: tweets}, randx.New(seed))
	return c.Tweets, c.Profiles
}
