package microblog_test

import (
	"errors"
	"testing"

	"juryselect/microblog"
)

// handCorpus builds a tiny corpus with a clear authority: everyone retweets
// "expert", and "expert" has the oldest account.
func handCorpus() ([]microblog.Tweet, []microblog.Profile) {
	tweets := []microblog.Tweet{
		{Author: "alice", Content: "RT @expert: is this rumor true?"},
		{Author: "bob", Content: "RT @expert: earthquake near the coast"},
		{Author: "carol", Content: "RT @expert: so helpful"},
		{Author: "dave", Content: "RT @alice: RT @expert: chain retweet"},
		{Author: "erin", Content: "no markers, just text"},
	}
	profiles := []microblog.Profile{
		{Name: "expert", AccountAgeDays: 3000},
		{Name: "alice", AccountAgeDays: 1500},
		{Name: "bob", AccountAgeDays: 800},
		{Name: "carol", AccountAgeDays: 400},
		{Name: "dave", AccountAgeDays: 100},
		{Name: "erin", AccountAgeDays: 50},
	}
	return tweets, profiles
}

func TestCandidatesHITSPipeline(t *testing.T) {
	tweets, profiles := handCorpus()
	res, err := microblog.Candidates(tweets, profiles, microblog.Options{Ranker: microblog.HITS})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) == 0 {
		t.Fatal("no candidates")
	}
	// The most-retweeted user must come out most reliable.
	if res.Candidates[0].ID != "expert" {
		t.Fatalf("top candidate = %s, want expert (candidates %v)",
			res.Candidates[0].ID, res.Candidates)
	}
	for i := 1; i < len(res.Candidates); i++ {
		if res.Candidates[i].ErrorRate < res.Candidates[i-1].ErrorRate {
			t.Fatal("candidates not ordered by ascending error rate")
		}
	}
	for _, c := range res.Candidates {
		if c.ErrorRate <= 0 || c.ErrorRate >= 1 {
			t.Fatalf("candidate %s: ε = %g out of (0,1)", c.ID, c.ErrorRate)
		}
		if c.Cost < 0 || c.Cost > 1 {
			t.Fatalf("candidate %s: cost = %g out of [0,1]", c.ID, c.Cost)
		}
	}
	if res.Graph.Edges == 0 || res.Graph.Nodes == 0 {
		t.Fatalf("graph stats empty: %+v", res.Graph)
	}
}

func TestCandidatesPageRank(t *testing.T) {
	tweets, profiles := handCorpus()
	res, err := microblog.Candidates(tweets, profiles, microblog.Options{Ranker: microblog.PageRank})
	if err != nil {
		t.Fatal(err)
	}
	if res.Candidates[0].ID != "expert" {
		t.Fatalf("PageRank top candidate = %s, want expert", res.Candidates[0].ID)
	}
}

func TestCandidatesTopK(t *testing.T) {
	tweets, profiles := handCorpus()
	res, err := microblog.Candidates(tweets, profiles, microblog.Options{TopK: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) != 2 {
		t.Fatalf("TopK=2 returned %d candidates", len(res.Candidates))
	}
}

func TestCandidatesNoRetweets(t *testing.T) {
	tweets := []microblog.Tweet{{Author: "a", Content: "plain"}}
	if _, err := microblog.Candidates(tweets, nil, microblog.Options{}); !errors.Is(err, microblog.ErrNoRetweets) {
		t.Fatalf("err = %v, want ErrNoRetweets", err)
	}
}

func TestCandidatesRequirementFromAge(t *testing.T) {
	tweets, profiles := handCorpus()
	res, err := microblog.Candidates(tweets, profiles, microblog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	byID := map[string]float64{}
	var minCost, maxCost float64 = 2, -1
	for _, c := range res.Candidates {
		byID[c.ID] = c.Cost
		if c.Cost < minCost {
			minCost = c.Cost
		}
		if c.Cost > maxCost {
			maxCost = c.Cost
		}
	}
	// Oldest account among candidates must be the most expensive; the
	// normalization spans [0,1].
	if byID["expert"] != maxCost {
		t.Errorf("expert cost %g is not the maximum %g", byID["expert"], maxCost)
	}
	if minCost != 0 || maxCost != 1 {
		t.Errorf("requirement range [%g,%g], want [0,1]", minCost, maxCost)
	}
}

func TestRetweetChainExported(t *testing.T) {
	chain := microblog.RetweetChain("RT @a: RT @b: x")
	if len(chain) != 2 || chain[0] != "a" || chain[1] != "b" {
		t.Fatalf("chain = %v", chain)
	}
}

func TestSyntheticCorpusDeterministic(t *testing.T) {
	t1, p1 := microblog.SyntheticCorpus(100, 500, 9)
	t2, p2 := microblog.SyntheticCorpus(100, 500, 9)
	if len(t1) != 500 || len(p1) != 100 {
		t.Fatalf("sizes: %d tweets %d profiles", len(t1), len(p1))
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatal("corpus not deterministic")
		}
	}
	if len(p2) != len(p1) {
		t.Fatal("profiles not deterministic")
	}
}

func TestEndToEndPipelineWithSyntheticCorpus(t *testing.T) {
	tweets, profiles := microblog.SyntheticCorpus(500, 3000, 11)
	res, err := microblog.Candidates(tweets, profiles, microblog.Options{TopK: 50, Ranker: microblog.PageRank})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) != 50 {
		t.Fatalf("candidates = %d, want 50", len(res.Candidates))
	}
	if res.Scores[res.Candidates[0].ID] == 0 {
		t.Error("top candidate has zero score")
	}
}

func TestRankerString(t *testing.T) {
	if microblog.HITS.String() != "hits" || microblog.PageRank.String() != "pagerank" {
		t.Error("ranker names")
	}
	if microblog.Ranker(9).String() != "Ranker(9)" {
		t.Error("unknown ranker name")
	}
}

func TestCandidatesLinearNormalization(t *testing.T) {
	tweets, profiles := handCorpus()
	expRes, err := microblog.Candidates(tweets, profiles, microblog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	linRes, err := microblog.Candidates(tweets, profiles, microblog.Options{
		Normalization: microblog.Linear,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Same ordering under both normalizations; the exponential map must be
	// more optimistic about non-top head users than the linear map.
	if expRes.Candidates[0].ID != linRes.Candidates[0].ID {
		t.Fatalf("top candidate differs: %s vs %s",
			expRes.Candidates[0].ID, linRes.Candidates[0].ID)
	}
	for i := range linRes.Candidates {
		if linRes.Candidates[i].ErrorRate <= 0 || linRes.Candidates[i].ErrorRate >= 1 {
			t.Fatalf("linear ε out of range: %g", linRes.Candidates[i].ErrorRate)
		}
	}
	// Candidate 1 (alice) has a score strictly between min and max, where
	// the two maps genuinely differ; the exponential map must be more
	// optimistic there. (Candidates at the score minimum clamp to ≈1 under
	// both maps and are uninformative.)
	if expRes.Candidates[1].ErrorRate >= linRes.Candidates[1].ErrorRate {
		t.Errorf("exponential second-rank ε %g not below linear %g",
			expRes.Candidates[1].ErrorRate, linRes.Candidates[1].ErrorRate)
	}
}
